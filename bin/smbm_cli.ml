(* Command-line front end: reproduce any experiment of the paper at any
   scale.

   smbm_cli policies                list the available policies
   smbm_cli compare   [options]     all policies in lockstep (ratios,
                                    --detail fairness, --replications)
   smbm_cli simulate  [options]     one policy, detailed metrics
                                    (--heavy-tail, --timeseries FILE)
   smbm_cli sweep     [options]     arbitrary k/B/C sweep (--xs, --csv)
   smbm_cli figure N  [options]     regenerate a Fig. 5 panel (1-9)
   smbm_cli lowerbound THM          run a theorem's adversarial construction
   smbm_cli trace record|stats F    record / inspect arrival traces
   smbm_cli trace-validate F        structural audit of an event trace
   smbm_cli trace-replay F          reconstruct state + metrics from events
   smbm_cli trace-diff F [G]        first divergence between two sources
   smbm_cli trace-explain F [G]     charge a throughput gap to loss events
   smbm_cli certify   [options]     Theorem 7's mapping routine, live
   smbm_cli serve     [options]     online switch daemon (ring ingest,
                                    live reconfiguration, soak gates)
   smbm_cli loadgen   [options]     MMPP load generator (sustained
                                    slots/sec, tail latency)
   smbm_cli bench-diff BASE CUR     gate benchmark JSONL vs a baseline *)

open Cmdliner
open Smbm_core
open Smbm_sim

(* ----- shared options ----- *)

type common = {
  k : int;
  buffer : int;
  speedup : int;
  load : float;
  sources : int;
  slots : int;
  flush : int;
  seed : int;
  jobs : int;
}

let jobs_term =
  Arg.(
    value
    & opt int (-1)
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "SMBM_JOBS")
        ~doc:
          "Worker domains for parallel commands ($(b,figure), $(b,sweep), \
           $(b,compare --replications), $(b,lowerbound all)).  0 runs \
           inline; default: $(b,SMBM_JOBS) or the number of cores.  Results \
           are bit-identical for every value.")

let jobs_of jobs = if jobs >= 0 then jobs else Smbm_par.Pool.default_jobs ()

let common_term =
  let open Term in
  let k =
    Arg.(value & opt int 16 & info [ "k" ] ~docv:"K" ~doc:"Maximum work/value (also the number of ports).")
  in
  let buffer =
    Arg.(value & opt int 64 & info [ "b"; "buffer" ] ~docv:"B" ~doc:"Shared buffer size in packets.")
  in
  let speedup =
    Arg.(value & opt int 1 & info [ "c"; "speedup" ] ~docv:"C" ~doc:"Processing cycles (resp. transmissions) per queue per slot.")
  in
  let load =
    Arg.(value & opt float 2.0 & info [ "load" ] ~docv:"RHO" ~doc:"Normalized offered load (1.0 saturates the switch on average).")
  in
  let sources =
    Arg.(value & opt int 500 & info [ "sources" ] ~docv:"N" ~doc:"Number of interleaved MMPP sources.")
  in
  let slots =
    Arg.(value & opt int 200_000 & info [ "slots" ] ~docv:"T" ~doc:"Simulation length in time slots.")
  in
  let flush =
    Arg.(value & opt int 10_000 & info [ "flush-every" ] ~docv:"F" ~doc:"Periodic flushout interval in slots (0 disables).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let make k buffer speedup load sources slots flush seed jobs =
    { k; buffer; speedup; load; sources; slots; flush; seed; jobs }
  in
  const make $ k $ buffer $ speedup $ load $ sources $ slots $ flush $ seed
  $ jobs_term

let model_term =
  let models =
    [ ("proc", Sweep.Proc); ("value-uniform", Sweep.Value_uniform); ("value-port", Sweep.Value_port) ]
  in
  Arg.(
    value
    & opt (enum models) Sweep.Proc
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Switch model: $(b,proc) (heterogeneous processing), $(b,value-uniform) or $(b,value-port).")

let base_of c =
  {
    Sweep.k = c.k;
    buffer = c.buffer;
    speedup = c.speedup;
    load = c.load;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = c.sources };
    slots = c.slots;
    flush_every = (if c.flush > 0 then Some c.flush else None);
    seed = c.seed;
  }

(* ----- observability options ----- *)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "SMBM_TRACE")
        ~doc:
          "Write per-slot switch events (arrival, accept, push-out, drop, \
           transmit, slot-end) as JSONL to $(docv).  Deterministic: \
           byte-identical for every $(b,--jobs) value, and recording does \
           not change any result.  Validate with $(b,trace-validate).")

let trace_cap_term =
  Arg.(
    value
    & opt int Smbm_par.Par_sweep.default_trace_cap
    & info [ "trace-cap" ] ~docv:"N"
        ~doc:
          "Event ring-buffer capacity (per sweep point for $(b,figure)); \
           the oldest events are evicted beyond it, keeping memory bounded \
           on long runs.")

let metrics_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the final aggregate counters and histograms as labeled \
           JSONL metric lines to $(docv).")

let progress_term =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Print a progress line to stderr.")

let model_name = function
  | Sweep.Proc -> "proc"
  | Sweep.Value_uniform -> "value-uniform"
  | Sweep.Value_port -> "value-port"

let write_events path events =
  let sink = Smbm_obs.Sink.file path in
  List.iter (Smbm_obs.Sink.event sink) events;
  Smbm_obs.Sink.close sink

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* ----- policies ----- *)

let policies_cmd =
  let run () =
    let proc = Proc_config.contiguous ~k:4 ~buffer:16 () in
    let value = Value_config.make ~ports:4 ~max_value:4 ~buffer:16 () in
    print_endline "Processing model (Section III):";
    List.iter
      (fun (p : Proc_policy.t) ->
        Printf.printf "  %-6s %s\n" p.name
          (if p.push_out then "push-out" else "non-push-out"))
      (Policies.proc proc);
    print_endline "Value model (Section IV):";
    List.iter
      (fun (p : Value_policy.t) ->
        Printf.printf "  %-6s %s\n" p.name
          (if p.push_out then "push-out" else "non-push-out"))
      (Policies.value_port ~port_value:[| 1; 2; 3; 4 |] value)
  in
  Cmd.v
    (Cmd.info "policies" ~doc:"List the buffer-management policies of both models.")
    Term.(const run $ const ())

(* ----- compare ----- *)

let run_compare common model replications detail =
  let base = base_of common in
  let objective =
    match Sweep.objective model with `Packets -> "packets" | `Value -> "value"
  in
  if detail then begin
    let details =
      Sweep.run_point_detailed ~base ~model ~axis:Sweep.K ~x:common.k
    in
    let rows =
      List.map
        (fun (name, (d : Sweep.detail)) ->
          [
            name;
            Smbm_report.Table.float_cell d.ratio;
            Smbm_report.Table.float_cell d.jain;
            string_of_int d.starved;
            Smbm_report.Table.float_cell ~digits:1 d.mean_latency;
            Smbm_report.Table.float_cell ~digits:1 d.p99_latency;
            Smbm_report.Table.float_cell ~digits:4 d.drop_rate;
          ])
        details
    in
    print_string
      (Smbm_report.Table.render
         ~headers:
           [
             "policy"; "ratio (" ^ objective ^ ")"; "jain"; "starved";
             "lat-mean"; "lat-p99"; "drop";
           ]
         ~rows ())
  end
  else if replications > 1 then begin
    let seeds = List.init replications (fun i -> common.seed + i) in
    let reps =
      Smbm_par.Par_sweep.run_point_replicated ~jobs:(jobs_of common.jobs)
        ~base ~model ~axis:Sweep.K ~x:common.k ~seeds ()
    in
    let rows =
      List.map
        (fun (name, (r : Sweep.replicated)) ->
          [
            name;
            Smbm_report.Table.float_cell r.mean;
            Smbm_report.Table.float_cell r.stddev;
            string_of_int r.runs;
            string_of_int r.dropped_non_finite;
          ])
        reps
    in
    print_string
      (Smbm_report.Table.render
         ~headers:
           [
             "policy"; "mean ratio (" ^ objective ^ ")"; "stddev"; "runs";
             "dropped";
           ]
         ~rows ())
  end
  else begin
    let ratios = Sweep.run_point ~base ~model ~axis:Sweep.K ~x:common.k () in
    let rows =
      List.map (fun (name, r) -> [ name; Smbm_report.Table.float_cell r ]) ratios
    in
    print_string
      (Smbm_report.Table.render
         ~headers:[ "policy"; "ratio (" ^ objective ^ ")" ]
         ~rows ())
  end

let compare_cmd =
  let replications =
    Arg.(
      value & opt int 1
      & info [ "replications" ] ~docv:"N"
          ~doc:"Repeat over N consecutive seeds and report mean and stddev.")
  in
  let detail =
    Arg.(
      value & flag
      & info [ "detail" ]
          ~doc:"Also report Jain fairness, starved ports, latency and drop rate.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every policy of a model plus the OPT reference in lockstep over one MMPP workload and print the empirical competitive ratios.")
    Term.(const run_compare $ common_term $ model_term $ replications $ detail)

(* ----- trace ----- *)

let run_trace common model action path =
  let mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = common.sources } in
  match action with
  | "record" ->
    let workload =
      match model with
      | Sweep.Proc ->
        let config =
          Proc_config.contiguous ~k:common.k ~buffer:common.buffer
            ~speedup:common.speedup ()
        in
        Smbm_traffic.Scenario.proc_workload ~mmpp ~config ~load:common.load
          ~seed:common.seed ()
      | Sweep.Value_uniform | Sweep.Value_port ->
        let config =
          Value_config.make ~ports:common.k ~max_value:common.k
            ~buffer:common.buffer ~speedup:common.speedup ()
        in
        if model = Sweep.Value_port then
          Smbm_traffic.Scenario.value_port_workload ~mmpp ~config
            ~load:common.load ~seed:common.seed ()
        else
          Smbm_traffic.Scenario.value_uniform_workload ~mmpp ~config
            ~load:common.load ~seed:common.seed ()
    in
    let trace = Smbm_traffic.Trace.record workload ~slots:common.slots in
    let oc = open_out path in
    Smbm_traffic.Trace.save trace oc;
    close_out oc;
    Printf.printf "recorded %d slots (%d arrivals) to %s\n"
      (Smbm_traffic.Trace.slots trace)
      (Smbm_traffic.Trace.arrivals trace)
      path
  | "stats" ->
    let ic = open_in path in
    let trace = Smbm_traffic.Trace.load ic in
    close_in ic;
    let stats = Smbm_traffic.Trace_stats.analyze trace in
    Format.printf "%a@." Smbm_traffic.Trace_stats.pp stats;
    let config =
      Proc_config.contiguous ~k:common.k ~buffer:common.buffer
        ~speedup:common.speedup ()
    in
    (match Smbm_traffic.Trace_stats.offered_load config trace with
    | load -> Format.printf "offered load vs k=%d switch: %.3f@." common.k load
    | exception Invalid_argument _ -> ());
    Format.printf "per-port packets:@.";
    List.iter
      (fun (port, n) -> Format.printf "  port %d: %d@." port n)
      stats.Smbm_traffic.Trace_stats.per_port
  | other -> failwith (Printf.sprintf "unknown trace action %S" other)

let trace_cmd =
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("record", "record"); ("stats", "stats") ])) None
      & info [] ~docv:"ACTION" ~doc:"$(b,record) a workload or show $(b,stats) of a trace file.")
  in
  let path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record MMPP workloads to trace files and inspect their statistics.")
    Term.(const run_trace $ common_term $ model_term $ action $ path)

(* ----- simulate ----- *)

let run_simulate common model heavy_tail timeseries trace trace_cap
    metrics_out progress policy_name =
  let base = base_of common in
  let mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = common.sources } in
  let params =
    {
      Experiment.slots = common.slots;
      flush_every = (if common.flush > 0 then Some common.flush else None);
      check_every = None;
    }
  in
  let recorder =
    match trace with
    | None -> None
    | Some _ -> Some (Smbm_obs.Recorder.create ~cap:trace_cap ())
  in
  let inst, workload =
    match model with
    | Sweep.Proc ->
      let config =
        Proc_config.contiguous ~k:common.k ~buffer:common.buffer
          ~speedup:common.speedup ()
      in
      let policy =
        match Policies.proc_find config policy_name with
        | Some p -> p
        | None -> failwith ("unknown processing policy: " ^ policy_name)
      in
      let workload =
        if heavy_tail then
          Smbm_traffic.Scenario.proc_heavy_tail_workload ~mmpp ~config
            ~load:common.load ~seed:common.seed ()
        else
          Smbm_traffic.Scenario.proc_workload ~mmpp ~config ~load:common.load
            ~seed:common.seed ()
      in
      (Proc_engine.instance ?recorder config policy, workload)
    | Sweep.Value_uniform | Sweep.Value_port ->
      let config =
        Value_config.make ~ports:common.k ~max_value:common.k
          ~buffer:common.buffer ~speedup:common.speedup ()
      in
      let port_value = Smbm_traffic.Scenario.port_values config in
      let policy =
        match Policies.value_find ~port_value config policy_name with
        | Some p -> p
        | None -> failwith ("unknown value policy: " ^ policy_name)
      in
      let workload =
        if model = Sweep.Value_port then
          Smbm_traffic.Scenario.value_port_workload ~mmpp ~config
            ~load:common.load ~seed:common.seed ()
        else
          Smbm_traffic.Scenario.value_uniform_workload ~mmpp ~config
            ~load:common.load ~seed:common.seed ()
      in
      (Value_engine.instance ?recorder config policy, workload)
  in
  let inst, series =
    match timeseries with
    | Some _ ->
      let wrapped, ts = Timeseries.attach ~every:(max 1 (common.slots / 200)) inst in
      (wrapped, Some ts)
    | None -> (inst, None)
  in
  let inst =
    if not progress then inst
    else begin
      let tick =
        Smbm_obs.Progress.make ~label:"simulate" ~total:common.slots ()
      in
      let slot = ref 0 in
      let every = max 1 (common.slots / 100) in
      let end_slot () =
        inst.Instance.end_slot ();
        incr slot;
        if !slot mod every = 0 || !slot = common.slots then tick !slot
      in
      { inst with Instance.end_slot }
    end
  in
  Experiment.run ~params ~workload [ inst ];
  (match (trace, recorder) with
  | Some path, Some r ->
    write_events path (Smbm_obs.Recorder.dump r);
    if Smbm_obs.Recorder.dropped r > 0 then
      Printf.eprintf "trace: %d events evicted (raise --trace-cap)\n"
        (Smbm_obs.Recorder.dropped r);
    Printf.printf "wrote trace to %s (%d events)\n" path
      (Smbm_obs.Recorder.length r)
  | _ -> ());
  (match metrics_out with
  | None -> ()
  | Some path ->
    let labels =
      [ ("policy", inst.Instance.name); ("model", model_name model) ]
    in
    let sink = Smbm_obs.Sink.file path in
    List.iter (Smbm_obs.Sink.line sink)
      (Metrics.to_jsonl ~labels inst.Instance.metrics);
    Smbm_obs.Sink.close sink;
    Printf.printf "wrote metrics to %s\n" path);
  (match timeseries, series with
  | Some path, Some ts ->
    let oc = open_out path in
    output_string oc (Timeseries.to_csv ts);
    close_out oc;
    Printf.printf "wrote time series to %s (%d samples)\n" path
      (Timeseries.samples ts)
  | _ -> ());
  ignore (base : Sweep.base);
  let m = inst.Instance.metrics in
  Format.printf "%s over %d slots:@.  %a@." inst.Instance.name common.slots
    Metrics.pp m;
  Format.printf
    "  mean occupancy %.1f / %d, latency mean %.2f / p50 %.1f / p99 %.1f \
     slots@."
    (Smbm_prelude.Running_stats.mean (Metrics.occupancy_stats m))
    common.buffer
    (Smbm_prelude.Running_stats.mean (Metrics.latency_stats m))
    (Smbm_prelude.Histogram.quantile (Metrics.latency_hist m) 0.5)
    (Smbm_prelude.Histogram.quantile (Metrics.latency_hist m) 0.99);
  match inst.Instance.ports with
  | Some ports ->
    Format.printf "  fairness: jain %.3f, starved ports %d / %d@."
      (Port_stats.jain_index ports
         ~objective:(Sweep.objective model))
      (Port_stats.starved_ports ports)
      (Port_stats.n ports)
  | None -> ()

let simulate_cmd =
  let policy =
    Arg.(
      value & opt string "LWD"
      & info [ "policy" ] ~docv:"NAME" ~doc:"Policy to simulate (see $(b,policies)).")
  in
  let heavy_tail =
    Arg.(
      value & flag
      & info [ "heavy-tail" ]
          ~doc:"Pareto-batch bursts instead of Poisson emissions (processing model only).")
  in
  let timeseries =
    Arg.(
      value & opt (some string) None
      & info [ "timeseries" ] ~docv:"FILE"
          ~doc:"Record occupancy/throughput/drop-rate samples to a CSV file.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a single policy and print detailed metrics.")
    Term.(
      const run_simulate $ common_term $ model_term $ heavy_tail $ timeseries
      $ trace_term $ trace_cap_term $ metrics_out_term $ progress_term
      $ policy)

(* ----- figure ----- *)

let run_figure common panel xs csv trace trace_cap metrics_out progress =
  let base = base_of common in
  let xs = match xs with [] -> None | l -> Some l in
  let total =
    match xs with
    | Some l -> List.length l
    | None -> List.length (Sweep.panel panel).Sweep.xs
  in
  let on_tick =
    if progress then
      Some (Smbm_obs.Progress.make ~label:"figure" ~total ())
    else None
  in
  let outcome =
    match trace with
    | None ->
      Smbm_par.Par_sweep.run_panel ?on_tick ~jobs:(jobs_of common.jobs) ~base
        ?xs panel
    | Some path ->
      let traced =
        Smbm_par.Par_sweep.run_panel_traced ?on_tick ~trace_cap
          ~jobs:(jobs_of common.jobs) ~base ?xs panel
      in
      write_events path traced.Smbm_par.Par_sweep.events;
      if traced.Smbm_par.Par_sweep.dropped_events > 0 then
        Printf.eprintf "trace: %d events evicted (raise --trace-cap)\n"
          traced.Smbm_par.Par_sweep.dropped_events;
      Printf.printf "wrote trace to %s (%d events)\n" path
        (List.length traced.Smbm_par.Par_sweep.events);
      traced.Smbm_par.Par_sweep.outcome
  in
  (match metrics_out with
  | None -> ()
  | Some path ->
    (* One gauge line per (point, policy): the panel's ratio surface. *)
    let sink = Smbm_obs.Sink.file path in
    List.iter
      (fun (p : Sweep.point) ->
        List.iter
          (fun (name, r) ->
            Smbm_obs.Sink.line sink
              (Smbm_obs.Json.obj
                 [
                   ("metric", Smbm_obs.Json.Str "competitive_ratio");
                   ("type", Smbm_obs.Json.Str "gauge");
                   ("value", Smbm_obs.Json.Float r);
                   ("panel", Smbm_obs.Json.Int panel);
                   ("x", Smbm_obs.Json.Int p.Sweep.x);
                   ("policy", Smbm_obs.Json.Str name);
                 ]))
          p.Sweep.ratios)
      outcome.Sweep.points;
    Smbm_obs.Sink.close sink;
    Printf.printf "wrote metrics to %s\n" path);
  let points = outcome.Sweep.points in
  let names =
    match points with
    | p :: _ -> List.map fst p.Sweep.ratios
    | [] -> []
  in
  let axis_name =
    match outcome.Sweep.panel.Sweep.axis with
    | Sweep.K -> "k"
    | Sweep.B -> "B"
    | Sweep.C -> "C"
  in
  let headers = axis_name :: names in
  let rows =
    List.map
      (fun (p : Sweep.point) ->
        string_of_int p.x
        :: List.map (fun (_, r) -> Smbm_report.Table.float_cell r) p.ratios)
      points
  in
  Printf.printf "Fig. 5 panel %d\n" panel;
  print_string (Smbm_report.Table.render ~headers ~rows ());
  let series =
    List.map
      (fun name ->
        Smbm_report.Series.of_ints ~name
          ~points:
            (List.map
               (fun (p : Sweep.point) -> (p.x, List.assoc name p.ratios))
               points))
      names
  in
  print_string
    (Smbm_report.Ascii_plot.render
       ~title:(Printf.sprintf "competitive ratio vs %s" axis_name)
       ~x_label:axis_name ~log_x:true series);
  match csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Smbm_report.Csv.write oc (headers :: rows);
    close_out oc;
    Printf.printf "wrote %s\n" path

let figure_cmd =
  let panel =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"PANEL" ~doc:"Panel number, 1-9.")
  in
  let xs =
    Arg.(value & opt (list int) [] & info [ "xs" ] ~docv:"X1,X2,.." ~doc:"Override the swept values.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  Cmd.v
    (Cmd.info "figure"
       ~doc:"Regenerate one of the nine panels of the paper's Fig. 5 (empirical competitive ratio vs k, B or C).")
    Term.(
      const run_figure $ common_term $ panel $ xs $ csv $ trace_term
      $ trace_cap_term $ metrics_out_term $ progress_term)

(* ----- trace-validate ----- *)

(* Structural audit of an event trace produced by --trace: every line must
   parse strictly, slots must be non-decreasing within each source stream,
   and each source's arrivals must balance its accepts plus drops.  When the
   recording ring evicted a prefix, the dump's [truncated] markers declare
   how much is missing per scope; the audit then allows each covered source
   a resolution surplus (an evicted arrival whose accept/drop survived) up
   to the declared budget, and reports which slots are unverifiable.
   [--allow-truncation] remains for legacy traces without markers. *)
let run_trace_validate allow_truncation path =
  let module E = Smbm_obs.Event in
  let per_src : (string, int * (int * int * int)) Hashtbl.t =
    (* src -> last slot, (arrivals, accepted, dropped) *)
    Hashtbl.create 16
  in
  let truncations = ref [] (* scope, evicted, oldest surviving slot *) in
  let kinds = Hashtbl.create 8 in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt in
  let on_event ~lineno (ev : E.t) =
    let name = E.kind_name ev.E.kind in
    Hashtbl.replace kinds name
      (1 + Option.value (Hashtbl.find_opt kinds name) ~default:0);
    match ev.E.kind with
    | E.Truncated { evicted } ->
      truncations := (ev.E.src, evicted, ev.E.slot) :: !truncations
    | _ ->
      let last, (arr, acc, drop) =
        Option.value
          (Hashtbl.find_opt per_src ev.E.src)
          ~default:(0, (0, 0, 0))
      in
      if ev.E.slot < last then
        fail "%s:%d: slot %d of %S goes backwards (last %d)" path lineno
          ev.E.slot ev.E.src last;
      let counts =
        match ev.E.kind with
        | E.Arrival _ -> (arr + 1, acc, drop)
        | E.Accept _ -> (arr, acc + 1, drop)
        | E.Drop _ -> (arr, acc, drop + 1)
        | E.Push_out _ | E.Transmit _ | E.Transmit_bulk _ | E.Flush _
        | E.Slot_end _ | E.Reconfig _ | E.Health _ | E.Truncated _ ->
          (arr, acc, drop)
      in
      Hashtbl.replace per_src ev.E.src (ev.E.slot, counts)
  in
  (* iter_events dispatches on the binary magic, so both encodings get the
     same audit. *)
  (match Smbm_forensics.Trace_file.iter_events path ~f:on_event with
  | Ok _ -> ()
  | Error msg -> fail "%s" msg);
  let truncations = List.rev !truncations in
  let sources =
    Hashtbl.fold (fun src v acc -> (src, v) :: acc) per_src []
    |> List.sort compare
  in
  (* Conservation per source.  In a stream whose oldest events were evicted,
     resolutions can outnumber arrivals (the arrival fell off the ring, its
     accept/drop survived) — never the reverse, since an arrival is always
     recorded before its resolution. *)
  let deficits =
    List.filter_map
      (fun (src, (_, (arr, acc, drop))) ->
        let deficit = acc + drop - arr in
        if deficit < 0 then
          fail
            "%s: source %S has %d arrivals but only %d resolutions — \
             impossible even under truncation (corrupted trace)"
            path src arr (acc + drop);
        if deficit = 0 then None else Some (src, deficit))
      sources
  in
  List.iter
    (fun (src, deficit) ->
      let budget =
        List.fold_left
          (fun b (scope, evicted, _) ->
            if Smbm_forensics.Trace_file.scope_covers ~scope src then
              b + evicted
            else b)
          0 truncations
      in
      if budget = 0 && not allow_truncation then
        fail
          "%s: source %S violates arrivals = accepted + dropped (missing %d \
           arrivals) with no truncation marker covering it; a truncated \
           legacy trace? (--allow-truncation)"
          path src deficit)
    deficits;
  (* The declared budgets must cover the observed imbalances. *)
  List.iter
    (fun (scope, evicted, _) ->
      let missing =
        List.fold_left
          (fun n (src, deficit) ->
            if Smbm_forensics.Trace_file.scope_covers ~scope src then
              n + deficit
            else n)
          0 deficits
      in
      if missing > evicted then
        fail
          "%s: scope %S declares %d evicted events but its sources are \
           missing %d arrival resolutions (corrupted trace)"
          path scope evicted missing)
    truncations;
  let total = Hashtbl.fold (fun _ n acc -> acc + n) kinds 0 in
  Printf.printf "%s: %d events, %d sources, all lines valid\n" path total
    (Hashtbl.length per_src);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds []
  |> List.sort compare
  |> List.iter (fun (k, n) -> Printf.printf "  %-13s %d\n" k n);
  List.iter
    (fun (scope, evicted, oldest) ->
      Printf.printf
        "  truncated scope %s: %d events evicted; slots < %d unverifiable\n"
        (if scope = "" then "(root)" else scope)
        evicted oldest)
    truncations;
  List.iter
    (fun (src, deficit) ->
      Printf.printf
        "  source %s: %d resolutions without surviving arrivals (evicted \
         prefix)\n"
        src deficit)
    deficits

let trace_validate_cmd =
  let allow_truncation =
    Arg.(
      value & flag
      & info [ "allow-truncation" ]
          ~doc:
            "Skip the per-source conservation check (needed when the \
             recording ring buffer evicted events).")
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Event trace (JSONL or binary) written by --trace.")
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:
         "Check an event trace written by $(b,--trace) (JSONL or binary): \
          strict parsing, per-source slot monotonicity, and arrival \
          conservation.")
    Term.(const run_trace_validate $ allow_truncation $ path)

(* ----- trace-convert ----- *)

let run_trace_convert input output to_format =
  let module TF = Smbm_forensics.Trace_file in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt in
  let target =
    match to_format with
    | Some f -> f
    | None ->
      (* Default: flip whatever the input is. *)
      if TF.is_binary input then `Jsonl else `Binary
  in
  match TF.read_events input with
  | Error msg -> fail "%s" msg
  | Ok indexed -> (
    let events = List.map snd indexed in
    match target with
    | `Binary -> (
      match TF.write_binary output events with
      | Ok () ->
        Printf.printf "%s: wrote %d events (binary) to %s\n" input
          (List.length events) output
      | Error msg -> fail "%s" msg)
    | `Jsonl -> (
      match open_out output with
      | exception Sys_error msg -> fail "%s" msg
      | oc ->
        List.iter
          (fun e ->
            output_string oc (Smbm_obs.Event.to_json e);
            output_char oc '\n')
          events;
        close_out oc;
        Printf.printf "%s: wrote %d events (jsonl) to %s\n" input
          (List.length events) output))

let trace_convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Input trace, JSONL or binary.")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output path.")
  in
  let to_format =
    let fmt = Arg.enum [ ("jsonl", `Jsonl); ("binary", `Binary) ] in
    Arg.(
      value
      & opt (some fmt) None
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:
            "Target encoding, $(b,jsonl) or $(b,binary).  Default: the \
             opposite of the input's.")
  in
  Cmd.v
    (Cmd.info "trace-convert"
       ~doc:
         "Convert an event trace between the JSONL and binary encodings, \
          losslessly in both directions.")
    Term.(const run_trace_convert $ input $ output $ to_format)

(* ----- trace-replay / trace-diff / trace-explain ----- *)

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let load_trace path =
  match Smbm_forensics.Trace_file.load path with
  | Ok t -> t
  | Error msg -> die "%s" msg

(* Two-trace commands: sources come from one file or two.  Omitted source
   names default positionally — the first (and second) source of the
   file(s) — which does the right thing for a two-policy trace. *)
let resolve_pair file_a file_b src_a src_b =
  let ta = load_trace file_a in
  let tb = match file_b with None -> ta | Some p -> load_trace p in
  let pick t n fallback =
    match n with
    | Some name -> (
      match Smbm_forensics.Trace_file.find t name with
      | Ok s -> s
      | Error msg -> die "%s" msg)
    | None -> (
      match fallback t.Smbm_forensics.Trace_file.sources with
      | Some s -> s
      | None ->
        die "%s: not enough sources (have: %s); name one with --a/--b"
          t.Smbm_forensics.Trace_file.path
          (String.concat ", " (Smbm_forensics.Trace_file.source_names t)))
  in
  let a = pick ta src_a (function s :: _ -> Some s | [] -> None) in
  let b =
    match file_b with
    | Some _ -> pick tb src_b (function s :: _ -> Some s | [] -> None)
    | None ->
      pick tb src_b (fun sources ->
          List.find_opt
            (fun (s : Smbm_forensics.Trace_file.source) ->
              s.Smbm_forensics.Trace_file.src
              <> a.Smbm_forensics.Trace_file.src)
            sources)
  in
  (a, b)

let file_a_term =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE_A" ~doc:"Event trace (JSONL) written by $(b,--trace).")

let file_b_term =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"FILE_B"
        ~doc:"Second trace; omit when both sources are in $(i,FILE_A).")

let src_a_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "src-a" ] ~docv:"SRC"
        ~doc:"Reference source (e.g. $(b,OPT) or $(b,x=8/LWD)); default: the file's first source.")

let src_b_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "src-b" ] ~docv:"SRC"
        ~doc:"Source under scrutiny; default: the next distinct source.")

let read_jsonl_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

(* Metric lines carry run labels (policy, model) the replayer cannot know;
   strip them before the bit-identity comparison. *)
let strip_metric_labels line =
  match Smbm_obs.Json.parse_flat line with
  | Error _ -> line
  | Ok fields ->
    Smbm_obs.Json.obj
      (List.filter (fun (k, _) -> k <> "policy" && k <> "model") fields)

let metric_policy_label lines =
  List.find_map
    (fun line ->
      match Smbm_obs.Json.parse_flat line with
      | Ok fields -> (
        match List.assoc_opt "policy" fields with
        | Some (Smbm_obs.Json.Str p) -> Some p
        | _ -> None)
      | Error _ -> None)
    lines

let run_trace_replay src expect_metrics path =
  let module F = Smbm_forensics in
  let file = load_trace path in
  let sources =
    match src with
    | None -> file.F.Trace_file.sources
    | Some name -> (
      match F.Trace_file.find file name with
      | Ok s -> [ s ]
      | Error msg -> die "%s" msg)
  in
  if sources = [] then die "%s: no event sources" path;
  let failed = ref false in
  let replayed =
    List.filter_map
      (fun (s : F.Trace_file.source) ->
        match F.Replay.replay s with
        | r ->
          Format.printf "%-20s %8d events  %a@." r.F.Replay.src
            r.F.Replay.events F.Replay.pp_status r.F.Replay.status;
          Format.printf "  %a@." Smbm_sim.Metrics.pp r.F.Replay.metrics;
          Some r
        | exception F.Replay.Divergent { src; lineno; slot; reason } ->
          failed := true;
          Printf.printf "%-20s DIVERGED at %s:%d (slot %d): %s\n" src path
            lineno slot reason;
          None)
      sources
  in
  (match expect_metrics with
  | None -> ()
  | Some mpath ->
    let expected = read_jsonl_lines mpath in
    let r =
      match metric_policy_label expected with
      | None -> (
        match replayed with
        | [ r ] -> r
        | _ ->
          die "%s: no policy label; pass --src to pick the source to compare"
            mpath)
      | Some policy -> (
        match
          List.find_opt
            (fun (r : Smbm_forensics.Replay.t) ->
              r.Smbm_forensics.Replay.src = policy
              || has_suffix ~suffix:("/" ^ policy)
                   r.Smbm_forensics.Replay.src)
            replayed
        with
        | Some r -> r
        | None -> die "%s: no replayed source matches policy %S" mpath policy)
    in
    let expected = List.map strip_metric_labels expected in
    let got = Smbm_sim.Metrics.to_jsonl r.Smbm_forensics.Replay.metrics in
    if expected = got then
      Printf.printf
        "%s: reconstructed metrics of %s are bit-identical (%d lines)\n"
        mpath r.Smbm_forensics.Replay.src (List.length got)
    else begin
      failed := true;
      Printf.printf "%s: reconstructed metrics of %s DIFFER\n" mpath
        r.Smbm_forensics.Replay.src;
      let rec first_diff i xs ys =
        match (xs, ys) with
        | x :: xs', y :: ys' ->
          if x = y then first_diff (i + 1) xs' ys'
          else Printf.printf "  line %d:\n    expected %s\n    replayed %s\n" i x y
        | x :: _, [] -> Printf.printf "  line %d only expected: %s\n" i x
        | [], y :: _ -> Printf.printf "  line %d only replayed: %s\n" i y
        | [], [] -> ()
      in
      first_diff 1 expected got
    end);
  if !failed then exit 1

let trace_replay_cmd =
  let src =
    Arg.(
      value
      & opt (some string) None
      & info [ "src" ] ~docv:"SRC" ~doc:"Replay only this source.")
  in
  let expect_metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-metrics" ] ~docv:"FILE"
          ~doc:
            "Metrics JSONL written by $(b,--metrics-out) in the same run; \
             fail unless the replayed counters and histograms reproduce it \
             bit-identically (run labels excepted).")
  in
  Cmd.v
    (Cmd.info "trace-replay"
       ~doc:
         "Fold an event trace back into shadow switch state: reconstruct \
          per-port occupancy, buffer fill and every aggregate counter, \
          certifying them against the recorded slot-end occupancies and \
          conservation at every slot.  Exits non-zero on the first \
          divergent event.")
    Term.(const run_trace_replay $ src $ expect_metrics $ file_a_term)

let run_trace_diff file_a file_b src_a src_b csv limit =
  let module F = Smbm_forensics in
  let a, b = resolve_pair file_a file_b src_a src_b in
  match F.Diff.diff ~a ~b with
  | Error msg -> die "%s" msg
  | Ok d ->
    Printf.printf "diff %s (A) vs %s (B): %d admissions over %d slots\n"
      d.F.Diff.a d.F.Diff.b d.F.Diff.admissions
      (min d.F.Diff.slots_a d.F.Diff.slots_b);
    if d.F.Diff.slots_a <> d.F.Diff.slots_b then
      Printf.printf "  (slot counts differ: A %d, B %d)\n" d.F.Diff.slots_a
        d.F.Diff.slots_b;
    (match d.F.Diff.first with
    | None -> Printf.printf "decision sequences are identical\n"
    | Some f ->
      Printf.printf
        "first divergence: slot %d, arrival #%d to port %d: A %s, B %s\n"
        f.F.Diff.slot f.F.Diff.index f.F.Diff.dest
        (F.Diff.decision_to_string f.F.Diff.a)
        (F.Diff.decision_to_string f.F.Diff.b);
      Printf.printf "differing admissions: %d / %d\n" d.F.Diff.diffs
        d.F.Diff.admissions);
    let divergent =
      List.filter (fun (r : F.Diff.row) -> r.F.Diff.diffs > 0) d.F.Diff.rows
    in
    (match divergent with
    | [] -> ()
    | _ ->
      let shown = List.filteri (fun i _ -> i < limit) divergent in
      Printf.printf "divergent slots (%d total, first %d):\n"
        (List.length divergent) (List.length shown);
      let rows =
        List.map
          (fun (r : F.Diff.row) ->
            [
              string_of_int r.F.Diff.slot;
              string_of_int r.F.Diff.arrivals;
              string_of_int r.F.Diff.diffs;
              string_of_int r.F.Diff.occ_a;
              string_of_int r.F.Diff.occ_b;
              string_of_int r.F.Diff.cum_tx_a;
              string_of_int r.F.Diff.cum_tx_b;
            ])
          shown
      in
      print_string
        (Smbm_report.Table.render
           ~headers:
             [ "slot"; "arrivals"; "diffs"; "occ A"; "occ B"; "cumTx A"; "cumTx B" ]
           ~rows ()));
    (match List.rev d.F.Diff.rows with
    | last :: _ ->
      Printf.printf "final objective: A %d vs B %d (gap %d)\n"
        last.F.Diff.cum_tx_a last.F.Diff.cum_tx_b
        (last.F.Diff.cum_tx_a - last.F.Diff.cum_tx_b)
    | [] -> ());
    (match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Smbm_report.Csv.write oc
        ([ "slot"; "arrivals"; "diffs"; "occ_a"; "occ_b"; "cum_tx_a"; "cum_tx_b" ]
        :: List.map
             (fun (r : F.Diff.row) ->
               [
                 string_of_int r.F.Diff.slot;
                 string_of_int r.F.Diff.arrivals;
                 string_of_int r.F.Diff.diffs;
                 string_of_int r.F.Diff.occ_a;
                 string_of_int r.F.Diff.occ_b;
                 string_of_int r.F.Diff.cum_tx_a;
                 string_of_int r.F.Diff.cum_tx_b;
               ])
             d.F.Diff.rows);
      close_out oc;
      Printf.printf "wrote %s\n" path);
    if d.F.Diff.first <> None then exit 2

let trace_diff_cmd =
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the full per-slot timeline as CSV.")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Divergent slots to print (default 20).")
  in
  Cmd.v
    (Cmd.info "trace-diff"
       ~doc:
         "Align two traces of the same arrival instance (two policies, or a \
          policy against the OPT reference) and report the first admission \
          decision where they part ways, plus a per-slot divergence \
          timeline.  Exits 2 when the decision sequences differ.")
    Term.(
      const run_trace_diff $ file_a_term $ file_b_term $ src_a_term
      $ src_b_term $ csv $ limit)

let run_trace_explain file_a file_b src_a src_b top csv =
  let module F = Smbm_forensics in
  let a, b = resolve_pair file_a file_b src_a src_b in
  match F.Attribution.attribute ~a ~b with
  | Error msg -> die "%s" msg
  | Ok t ->
    Printf.printf
      "attributing the gap of %s (B) vs %s (A) over %d slots%s\n"
      t.F.Attribution.b t.F.Attribution.a t.F.Attribution.slots
      (if t.F.Attribution.per_port_mode then "" else " (aggregate mode)");
    Printf.printf "objective: A %d, B %d, gap %d\n" t.F.Attribution.tx_a
      t.F.Attribution.tx_b t.F.Attribution.gap;
    let balance =
      t.F.Attribution.charged + t.F.Attribution.uncharged
      - t.F.Attribution.credits
    in
    Printf.printf
      "conservation: charged %d + uncharged %d - credits %d = %d %s\n"
      t.F.Attribution.charged t.F.Attribution.uncharged
      t.F.Attribution.credits balance
      (if balance = t.F.Attribution.gap then "= gap [ok]" else "<> gap [BROKEN]");
    if balance <> t.F.Attribution.gap then exit 1;
    let ranked = List.filteri (fun i _ -> i < top) t.F.Attribution.ranked in
    if ranked <> [] then begin
      Printf.printf "most expensive decisions of %s (top %d of %d charged):\n"
        t.F.Attribution.b (List.length ranked)
        (List.length t.F.Attribution.ranked);
      print_string
        (Smbm_report.Table.render
           ~headers:[ "line"; "slot"; "kind"; "queue"; "lost"; "charged" ]
           ~rows:
             (List.map
                (fun (l : F.Attribution.loss) ->
                  [
                    string_of_int l.F.Attribution.lineno;
                    string_of_int l.F.Attribution.slot;
                    F.Attribution.kind_to_string l.F.Attribution.kind;
                    (if l.F.Attribution.port < 0 then "-"
                     else string_of_int l.F.Attribution.port);
                    string_of_int l.F.Attribution.capacity;
                    string_of_int l.F.Attribution.charged;
                  ])
                ranked)
           ())
    end;
    (match t.F.Attribution.port_regret with
    | [] -> ()
    | per_port ->
      Printf.printf "per-port regret (A's lead in objective units):\n";
      List.iter
        (fun (port, r) ->
          if r <> 0 then Printf.printf "  port %2d: %+d\n" port r)
        per_port);
    if Array.length t.F.Attribution.regret_series > 1 then begin
      let series =
        Smbm_report.Series.of_ints ~name:"cumulative regret"
          ~points:
            (List.map
               (fun (slot, r) -> (slot, float_of_int r))
               (Array.to_list t.F.Attribution.regret_series))
      in
      print_string
        (Smbm_report.Ascii_plot.render
           ~title:
             (Printf.sprintf "regret of %s vs %s" t.F.Attribution.b
                t.F.Attribution.a)
           ~x_label:"slot" [ series ])
    end;
    (match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Smbm_report.Csv.write oc
        ([ "slot"; "cumulative_regret" ]
        :: List.map
             (fun (slot, r) -> [ string_of_int slot; string_of_int r ])
             (Array.to_list t.F.Attribution.regret_series));
      close_out oc;
      Printf.printf "wrote %s\n" path)

let trace_explain_cmd =
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Ranked loss events to print (default 15).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the cumulative regret series as CSV.")
  in
  Cmd.v
    (Cmd.info "trace-explain"
       ~doc:
         "Charge every unit of objective a reference run (A) delivered and \
          a policy run (B) did not to B's concrete loss events — drops, \
          push-outs, flushes — producing a ranked table of the most \
          expensive decisions and a per-port regret series.  The charge is \
          conservative: charged + uncharged - credits equals the measured \
          gap exactly.")
    Term.(
      const run_trace_explain $ file_a_term $ file_b_term $ src_a_term
      $ src_b_term $ top $ csv)

(* ----- lowerbound ----- *)

let run_lowerbound which jobs =
  let open Smbm_lowerbounds in
  let entries =
    if String.lowercase_ascii which = "all" then Constructions.all
    else
      match Constructions.find ~theorem:which with
      | Some c -> [ c ]
      | None ->
        failwith
          (Printf.sprintf
             "unknown construction %S (try \"Thm 4\" or \"all\")" which)
  in
  let measures =
    Runner.measure_many ~jobs:(jobs_of jobs)
      (List.map (fun (c : Constructions.t) -> c.measure) entries)
  in
  let rows =
    List.map2
      (fun (c : Constructions.t) (m : Runner.measured) ->
        [
          c.theorem;
          c.policy;
          (match c.model with `Proc -> "proc" | `Value -> "value");
          c.bound_text;
          Smbm_report.Table.float_cell c.finite_bound;
          Smbm_report.Table.float_cell m.Runner.ratio;
        ])
      entries measures
  in
  print_string
    (Smbm_report.Table.render
       ~headers:[ "theorem"; "policy"; "model"; "bound"; "finite bound"; "measured" ]
       ~rows ())

let lowerbound_cmd =
  let which =
    Arg.(value & pos 0 string "all" & info [] ~docv:"THM" ~doc:"Theorem label (\"Thm 1\" .. \"Thm 11\") or \"all\".")
  in
  Cmd.v
    (Cmd.info "lowerbound"
       ~doc:"Run a theorem's adversarial construction against its scripted OPT and compare the measured ratio with the closed-form bound.")
    Term.(const run_lowerbound $ which $ jobs_term)

(* ----- sweep ----- *)

let run_sweep common model axis_name xs csv =
  let base = base_of common in
  let axis =
    match String.lowercase_ascii axis_name with
    | "k" -> Sweep.K
    | "b" -> Sweep.B
    | "c" -> Sweep.C
    | other -> failwith (Printf.sprintf "unknown axis %S (expected k|b|c)" other)
  in
  let xs =
    match xs with
    | [] -> failwith "provide swept values with --xs, e.g. --xs 2,4,8,16"
    | xs -> xs
  in
  let points =
    Smbm_par.Par_sweep.run_points ~jobs:(jobs_of common.jobs) ~base ~model
      ~axis ~xs ()
  in
  let names = match points with (_, r) :: _ -> List.map fst r | [] -> [] in
  let headers = axis_name :: names in
  let rows =
    List.map
      (fun (x, ratios) ->
        string_of_int x
        :: List.map (fun (_, r) -> Smbm_report.Table.float_cell r) ratios)
      points
  in
  print_string (Smbm_report.Table.render ~headers ~rows ());
  match csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Smbm_report.Csv.write oc (headers :: rows);
    close_out oc;
    Printf.printf "wrote %s\n" path

let sweep_cmd =
  let axis =
    Arg.(
      value & opt string "k"
      & info [ "axis" ] ~docv:"AXIS" ~doc:"Swept parameter: $(b,k), $(b,b) or $(b,c).")
  in
  let xs =
    Arg.(
      value & opt (list int) []
      & info [ "xs" ] ~docv:"X1,X2,.." ~doc:"Values to sweep over (required).")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep an arbitrary parameter (k, B or C) for any model, with the traffic intensity held at the base configuration - the general form of the $(b,figure) panels.")
    Term.(const run_sweep $ common_term $ model_term $ axis $ xs $ csv)

(* ----- certify ----- *)

let run_certify common opponent_name =
  let config =
    Proc_config.contiguous ~k:common.k ~buffer:common.buffer ()
  in
  let opponent =
    match String.lowercase_ascii opponent_name with
    | "greedy" ->
      Proc_policy.make ~name:"greedy" ~push_out:false (fun sw ~dest:_ ->
          if Proc_switch.is_full sw then Decision.Drop else Decision.Accept)
    | name -> (
      match Policies.proc_find config name with
      | Some (p : Proc_policy.t) when not p.push_out -> p
      | Some _ -> failwith (name ^ " pushes out; Theorem 7 opponents may not")
      | None -> failwith ("unknown opponent policy: " ^ name))
  in
  let mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = common.sources } in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config ~load:common.load
      ~seed:common.seed ()
  in
  let report =
    Smbm_analysis.Mapping_certifier.run ~config ~opponent
      ~trace:(fun _ -> Smbm_traffic.Workload.next workload)
      ~slots:common.slots ()
  in
  Format.printf
    "Theorem 7 mapping certificate (LWD vs %s, %d slots):@.  %a@."
    opponent_name common.slots Smbm_analysis.Mapping_certifier.pp_report
    report;
  if report.Smbm_analysis.Mapping_certifier.violation_count = 0 then
    Format.printf
      "  certified: every opponent transmission is charged to an LWD\n\
      \  transmission, at most two per packet (%d <= 2 x %d).@."
      report.Smbm_analysis.Mapping_certifier.opt_transmitted
      report.Smbm_analysis.Mapping_certifier.lwd_transmitted

let certify_cmd =
  let opponent =
    Arg.(
      value & opt string "greedy"
      & info [ "opponent" ] ~docv:"NAME"
          ~doc:
            "Non-push-out opponent policy ($(b,greedy), $(b,NHST), $(b,NEST), $(b,NHDT)).")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Run the paper's Theorem 7 mapping routine (Fig. 3) live: LWD against a non-push-out opponent with the charging invariants checked at every event.")
    Term.(const run_certify $ common_term $ opponent)

(* ----- bench-diff ----- *)

let load_bench_metrics path =
  let ic = open_in path in
  let metrics = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         match Smbm_obs.Json.parse_flat line with
         | Error msg ->
           close_in ic;
           failwith (Printf.sprintf "%s:%d: %s" path !line_no msg)
         | Ok fields -> (
           match
             (List.assoc_opt "metric" fields, List.assoc_opt "value" fields)
           with
           | Some (Smbm_obs.Json.Str name), Some (Smbm_obs.Json.Float v) ->
             metrics := (name, v) :: !metrics
           | Some (Smbm_obs.Json.Str name), Some (Smbm_obs.Json.Int v) ->
             metrics := (name, float_of_int v) :: !metrics
           | _ -> ())
       end
     done
   with End_of_file -> close_in ic);
  List.rev !metrics

let parse_floor spec =
  match String.rindex_opt spec '=' with
  | None -> failwith (Printf.sprintf "--floor %s: expected METRIC=X" spec)
  | Some i -> (
    let name = String.sub spec 0 i in
    let v = String.sub spec (i + 1) (String.length spec - i - 1) in
    match float_of_string_opt v with
    | Some x when name <> "" -> (name, x)
    | _ -> failwith (Printf.sprintf "--floor %s: expected METRIC=X" spec))

let run_bench_diff baseline current tolerance cap slack mrd_floor alloc_tolerance
    floors =
  let floors = List.map parse_floor floors in
  let base = load_bench_metrics baseline
  and cur = load_bench_metrics current in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* Raw arrivals/sec are machine-dependent; the indexed/scan speedup
     ratios transfer between machines, so the regression gate compares
     those.  Ratios are saturated at [cap] before comparison: beyond it
     the indexed run's wall time is so short that the exact magnitude is
     timing noise, while any real regression (an accidental O(n) rescan)
     collapses the ratio toward 1x and is caught regardless. *)
  let is_ratio n =
    has_suffix ~suffix:"/speedup" n || has_suffix ~suffix:"/total" n
  in
  let speedups = List.filter (fun (n, _) -> is_ratio n) base in
  if speedups = [] then fail "%s: no */speedup metrics" baseline;
  Printf.printf "%-32s %9s %9s %8s\n" "metric" "baseline" "current" "delta";
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur with
      | None -> fail "%s: missing from %s" name current
      | Some c ->
        Printf.printf "%-32s %8.2fx %8.2fx %+7.1f%%\n" name b c
          ((c -. b) /. b *. 100.0);
        let b = Float.min b cap and c = Float.min c cap in
        (* [slack] absorbs run-to-run jitter that a pure percentage cannot:
           a 2x ratio legitimately wobbles by a few tenths between runs. *)
        if c < (b *. (1.0 -. tolerance)) -. slack then
          fail "%s regressed: %.2fx -> %.2fx (tolerance %.0f%% + %.1f, cap %.1fx)"
            name b c (tolerance *. 100.0) slack cap)
    speedups;
  (* Allocation budget: minor words per slot are deterministic (no timing
     noise), so they transfer between machines and get a plain percentage
     gate — an accidentally reintroduced per-arrival allocation shows up
     here even when wall-clock ratios absorb it. *)
  let allocs =
    List.filter
      (fun (n, _) -> has_suffix ~suffix:"/minor_words_per_slot" n)
      base
  in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur with
      | None -> fail "%s: missing from %s" name current
      | Some c ->
        Printf.printf "%-44s %8.1fw %8.1fw %+7.1f%%\n" name b c
          ((c -. b) /. b *. 100.0);
        if c > b *. (1.0 +. alloc_tolerance) +. 1.0 then
          fail "%s allocation regressed: %.1f -> %.1f words/slot (>%.0f%%)"
            name b c (alloc_tolerance *. 100.0))
    allocs;
  (* Metrics the fresh run emits that the committed baseline lacks are not
     errors — they are cells a new benchmark arm added — but silently
     skipping them would leave them ungated forever.  Print each one so the
     baseline regeneration is visible in the gate's output. *)
  let gated n = is_ratio n || has_suffix ~suffix:"/minor_words_per_slot" n in
  List.iter
    (fun (name, c) ->
      if gated name && not (List.mem_assoc name base) then
        Printf.printf "%-32s %9s %8.2f  [new]\n" name "-" c)
    cur;
  (* Absolute acceptance floors.  The historical MRD floor (the full-buffer
     MRD hot path at n = 256 must stay at least [mrd_floor] times faster
     than the rescans) applies whenever the baseline carries that metric —
     benchmark files without it (e.g. BENCH_e2e.json) skip it.  [floors]
     adds explicit METRIC=X floors checked against the current run. *)
  let floor_metric = "hotpath/value/MRD/n256/speedup" in
  let floors =
    if List.mem_assoc floor_metric base then (floor_metric, mrd_floor) :: floors
    else floors
  in
  List.iter
    (fun (name, floor) ->
      match List.assoc_opt name cur with
      | Some c when c < floor ->
        fail "%s = %.2fx below the %.1fx floor" name c floor
      | Some _ -> ()
      | None -> fail "%s missing from %s" name current)
    floors;
  match !failures with
  | [] ->
    Printf.printf
      "bench-diff: %d speedup ratios, %d allocation budgets, %d floors ok\n"
      (List.length speedups) (List.length allocs) (List.length floors)
  | fs ->
    List.iter (fun f -> Printf.eprintf "bench-diff: %s\n" f) (List.rev fs);
    exit 1

let bench_diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Committed benchmark JSONL (the reference).")
  in
  let current =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Freshly generated benchmark JSONL.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.2
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Allowed relative regression of each speedup ratio (default 0.2 = 20%).")
  in
  let cap =
    Arg.(
      value & opt float 4.0
      & info [ "cap" ] ~docv:"X"
          ~doc:
            "Saturate speedup ratios at $(docv) before comparing: very large \
             ratios are timing-noise-dominated, and a real regression drags \
             them below the cap anyway (default 4.0).")
  in
  let slack =
    Arg.(
      value & opt float 0.3
      & info [ "slack" ] ~docv:"X"
          ~doc:
            "Absolute jitter allowance subtracted from each gate threshold \
             (default 0.3).")
  in
  let mrd_floor =
    Arg.(
      value & opt float 2.0
      & info [ "mrd-floor" ] ~docv:"X"
          ~doc:
            "Minimum indexed/scan speedup for value-model MRD at n=256 \
             (checked only when the baseline carries that metric).")
  in
  let alloc_tolerance =
    Arg.(
      value & opt float 0.2
      & info [ "alloc-tolerance" ] ~docv:"FRAC"
          ~doc:
            "Allowed relative growth of each */minor_words_per_slot metric \
             (default 0.2 = 20%; allocation counts are deterministic, so no \
             slack term applies).")
  in
  let floors =
    Arg.(
      value & opt_all string []
      & info [ "floor" ] ~docv:"METRIC=X"
          ~doc:
            "Absolute floor on a current-run metric (repeatable), e.g. \
             $(b,--floor e2e/pipeline/proc/speedup=2).")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two benchmark JSONL outputs ($(b,bench/hotpath.exe), \
          $(b,bench/e2e.exe)) and fail on speedup-ratio regressions beyond \
          the tolerance, allocation-budget regressions, or floor violations \
          (CI gate against the committed BENCH_*.json).")
    Term.(
      const run_bench_diff $ baseline $ current $ tolerance $ cap $ slack
      $ mrd_floor $ alloc_tolerance $ floors)

(* ----- serve / loadgen ----- *)

let serve_model common model =
  match model with
  | Sweep.Proc ->
    Smbm_serve.Model.Proc
      (Proc_config.contiguous ~k:common.k ~buffer:common.buffer
         ~speedup:common.speedup ())
  | Sweep.Value_uniform ->
    Smbm_serve.Model.Value_uniform
      (Value_config.make ~ports:common.k ~max_value:common.k
         ~buffer:common.buffer ~speedup:common.speedup ())
  | Sweep.Value_port ->
    Smbm_serve.Model.Value_port
      (Value_config.make ~ports:common.k ~max_value:common.k
         ~buffer:common.buffer ~speedup:common.speedup ())

let parse_at spec =
  let bad () =
    die
      "--at %s: expected SLOT:policy=NAME, SLOT:buffer=N or SLOT:stop" spec
  in
  match String.index_opt spec ':' with
  | None -> bad ()
  | Some i -> (
    let slot = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt slot with
    | None -> bad ()
    | Some slot when slot < 0 -> bad ()
    | Some slot -> (
      if rest = "stop" then (slot, Smbm_serve.Daemon.Stop)
      else
        match String.index_opt rest '=' with
        | None -> bad ()
        | Some j -> (
          let key = String.sub rest 0 j in
          let v = String.sub rest (j + 1) (String.length rest - j - 1) in
          match key with
          | "policy" when v <> "" -> (slot, Smbm_serve.Daemon.Set_policy v)
          | "buffer" -> (
            match int_of_string_opt v with
            | Some b -> (slot, Smbm_serve.Daemon.Resize_buffer b)
            | None -> bad ())
          | _ -> bad ())))

let open_sink path =
  match Smbm_obs.Sink.open_file path with
  | Ok sink -> sink
  | Error e -> die "%s" (Smbm_obs.Sink.error_to_string e)

let close_sink sink =
  match Smbm_obs.Sink.close_result sink with
  | Ok () -> ()
  | Error e -> die "%s" (Smbm_obs.Sink.error_to_string e)

let load_arrival_trace path =
  let ic = try open_in path with Sys_error m -> die "%s" m in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try Smbm_traffic.Trace.load ic
      with Failure m -> die "%s: %s" path m)

let run_serve common model policy_name ingest_trace ring backpressure duration
    rate shards ats metrics_out metrics_every trace trace_cap max_p99
    stats_sock stats_every stats_window flight_cap postmortem =
  let mmpp =
    { Smbm_traffic.Scenario.default_mmpp with sources = common.sources }
  in
  let controls = List.map parse_at ats in
  let jobs = jobs_of common.jobs in
  let pool =
    if shards > 1 && jobs > 0 then
      Some (Smbm_par.Pool.create ~jobs:(min jobs shards) ())
    else None
  in
  let ingest =
    match ingest_trace with
    | Some path ->
      Smbm_serve.Daemon.Trace
        (Smbm_traffic.Trace.Compact.of_trace (load_arrival_trace path))
    | None ->
      Smbm_serve.Daemon.Bank
        (Smbm_serve.Mmpp_bank.create ~mmpp ?pool ~shards
           (serve_model common model) ~load:common.load ~seed:common.seed ())
  in
  let recorder, event_sink =
    match trace with
    | None -> (None, None)
    | Some path ->
      (Some (Smbm_obs.Recorder.create ~cap:trace_cap ()), Some (open_sink path))
  in
  let metrics_sink = Option.map open_sink metrics_out in
  let report =
    Smbm_serve.Daemon.run ~ring_capacity:ring ~backpressure
      ?flush_every:(if common.flush > 0 then Some common.flush else None)
      ~metrics_every ?metrics_sink ?recorder ?event_sink ~controls
      ?slots:(if common.slots > 0 then Some common.slots else None)
      ?duration:(if duration > 0. then Some duration else None)
      ?rate:(if rate > 0. then Some rate else None)
      ?stats_sock ~stats_every ~stats_window ~p99_budget_us:max_p99
      ~flight_cap ?postmortem ~model:(serve_model common model)
      ~policy:policy_name ~ingest ()
  in
  Option.iter Smbm_par.Pool.shutdown pool;
  Format.printf "%a@." Smbm_serve.Daemon.pp_report report;
  Option.iter
    (fun sink ->
      close_sink sink;
      Printf.printf "wrote metrics to %s\n" (Option.get metrics_out))
    metrics_sink;
  Option.iter
    (fun sink ->
      close_sink sink;
      Printf.printf "wrote trace to %s\n" (Option.get trace))
    event_sink;
  if not report.Smbm_serve.Daemon.conservation_ok then
    die "conservation audit failed: %s"
      (Option.value ~default:"?" report.Smbm_serve.Daemon.conservation_error);
  if max_p99 > 0. && report.Smbm_serve.Daemon.p99_us > max_p99 then begin
    Printf.eprintf "p99 slot time %.1f us exceeds the --max-p99-us gate %.1f\n"
      report.Smbm_serve.Daemon.p99_us max_p99;
    exit 2
  end;
  if report.Smbm_serve.Daemon.degraded then begin
    Printf.eprintf "health degraded at end of run:%s\n"
      (String.concat ""
         (List.filter_map
            (fun (name, tripped) -> if tripped then Some (" " ^ name) else None)
            report.Smbm_serve.Daemon.health));
    exit 3
  end

let backpressure_term =
  Arg.(
    value
    & opt
        (enum
           [ ("block", Smbm_serve.Daemon.Block); ("shed", Smbm_serve.Daemon.Shed) ])
        Smbm_serve.Daemon.Block
    & info [ "backpressure" ] ~docv:"MODE"
        ~doc:
          "Full-ring behaviour: $(b,block) paces the ingest on the engine, \
           $(b,shed) discards whole slots with explicit accounting.")

let ring_term =
  Arg.(
    value & opt int 64
    & info [ "ring" ] ~docv:"N"
        ~doc:"Ingest ring capacity in slots (bounds memory and ingest lead).")

let shards_term =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Split the MMPP source bank into $(docv) independent shards, \
           stepped in parallel on $(b,--jobs) worker domains.  The arrival \
           stream depends only on (seed, shards), never on --jobs.")

let duration_term ~default =
  Arg.(
    value & opt float default
    & info [ "duration" ] ~docv:"SECS"
        ~doc:"Stop the ingest after $(docv) wall-clock seconds (0 = no limit).")

let serve_cmd =
  let policy =
    Arg.(
      value & opt string "LWD"
      & info [ "policy" ] ~docv:"NAME"
          ~doc:"Initial victim policy (see $(b,policies)).")
  in
  let ingest_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "ingest-trace" ] ~docv:"FILE"
          ~doc:
            "Replay an arrival trace recorded with $(b,trace record) instead \
             of generating live MMPP traffic; the run ends with the trace.")
  in
  let rate =
    Arg.(
      value & opt float 0.
      & info [ "rate" ] ~docv:"SLOTS_PER_SEC"
          ~doc:"Pace the ingest at $(docv) slots per second (0 = unpaced).")
  in
  let ats =
    Arg.(
      value & opt_all string []
      & info [ "at" ] ~docv:"SLOT:KNOB"
          ~doc:
            "Scripted live reconfiguration, applied at the given slot \
             boundary without dropping buffered packets (repeatable): \
             $(b,SLOT:policy=NAME), $(b,SLOT:buffer=N) or $(b,SLOT:stop).")
  in
  let metrics_every =
    Arg.(
      value & opt int 0
      & info [ "metrics-every" ] ~docv:"SLOTS"
          ~doc:
            "Emit a labeled metrics snapshot to $(b,--metrics-out) (and \
             drain the event recorder to $(b,--trace)) every $(docv) slots \
             (0 = final snapshot only).")
  in
  let max_p99 =
    Arg.(
      value & opt float 0.
      & info [ "max-p99-us" ] ~docv:"US"
          ~doc:
            "Fail (exit 2) when the p99 engine slot time exceeds $(docv) \
             microseconds — the CI soak gate (0 disables).")
  in
  let stats_sock =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-sock" ] ~docv:"PATH"
          ~doc:
            "Serve live telemetry (stats | stats json | health | spans) on a \
             Unix socket at $(docv) from a dedicated domain; query it with \
             $(b,smbm_cli stats) / $(b,smbm_cli watch).  Also enables the \
             health watchdogs (exit 3 when degraded at end of run).")
  in
  let stats_every =
    Arg.(
      value & opt int 500
      & info [ "stats-every" ] ~docv:"SLOTS"
          ~doc:"Publish a fresh telemetry snapshot every $(docv) slots.")
  in
  let stats_window =
    Arg.(
      value & opt float 10.
      & info [ "stats-window" ] ~docv:"SECS"
          ~doc:
            "Rolling window for telemetry rates and windowed quantiles, in \
             seconds.")
  in
  let flight_cap =
    Arg.(
      value & opt int 65536
      & info [ "flight-cap" ] ~docv:"N"
          ~doc:
            "Size of the always-on flight recorder ring (last $(docv) \
             events, allocation-free; rounded up to a power of two; 0 \
             disables the black box).")
  in
  let postmortem =
    Arg.(
      value
      & opt (some string) None
      & info [ "postmortem" ] ~docv:"BASE"
          ~doc:
            "On the first health trip, sink error or engine exception, dump \
             the flight ring and a state snapshot to $(docv).trace.bin + \
             $(docv).meta.jsonl (inspect with $(b,smbm_cli postmortem)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one switch instance as a long-lived daemon: bounded-ring \
          ingest (MMPP bank or trace replay) with block/shed backpressure, \
          live policy/buffer reconfiguration at slot boundaries, periodic \
          metrics and event flushing, an optional live stats socket with \
          health watchdogs, and a final conservation audit.")
    Term.(
      const run_serve $ common_term $ model_term $ policy $ ingest_trace
      $ ring_term $ backpressure_term
      $ duration_term ~default:0.
      $ rate $ shards_term $ ats $ metrics_out_term $ metrics_every
      $ trace_term $ trace_cap_term $ max_p99 $ stats_sock $ stats_every
      $ stats_window $ flight_cap $ postmortem)

let run_loadgen common model policy_name ring duration shards =
  let mmpp =
    { Smbm_traffic.Scenario.default_mmpp with sources = common.sources }
  in
  let jobs = jobs_of common.jobs in
  let pool =
    if shards > 1 && jobs > 0 then
      Some (Smbm_par.Pool.create ~jobs:(min jobs shards) ())
    else None
  in
  let bank =
    Smbm_serve.Mmpp_bank.create ~mmpp ?pool ~shards (serve_model common model)
      ~load:common.load ~seed:common.seed ()
  in
  let rate_txt =
    match Smbm_serve.Mmpp_bank.mean_rate bank with
    | Some r -> Printf.sprintf "%.1f" r
    | None -> "?"
  in
  Printf.printf
    "loadgen: %d MMPP sources in %d shard(s), mean %s packets/slot, ring %d, \
     %.1fs\n\
     %!"
    common.sources shards rate_txt ring duration;
  let report =
    Smbm_serve.Daemon.run ~ring_capacity:ring ~backpressure:Block
      ?flush_every:(if common.flush > 0 then Some common.flush else None)
      ~duration
      ~model:(serve_model common model) ~policy:policy_name
      ~ingest:(Smbm_serve.Daemon.Bank bank) ()
  in
  Option.iter Smbm_par.Pool.shutdown pool;
  let r = report in
  Printf.printf
    "sustained %.0f slots/s (%.0f packets/s offered) over %d slots\n"
    r.Smbm_serve.Daemon.slots_per_sec
    (if r.Smbm_serve.Daemon.wall > 0. then
       float_of_int r.Smbm_serve.Daemon.arrivals /. r.Smbm_serve.Daemon.wall
     else 0.)
    r.Smbm_serve.Daemon.slots;
  Printf.printf "engine slot time p50 %.1f / p95 %.1f / p99 %.1f us\n"
    r.Smbm_serve.Daemon.p50_us r.Smbm_serve.Daemon.p95_us
    r.Smbm_serve.Daemon.p99_us;
  Printf.printf "ring max %d/%d\n" r.Smbm_serve.Daemon.ring_max
    r.Smbm_serve.Daemon.ring_capacity;
  if not r.Smbm_serve.Daemon.conservation_ok then
    die "conservation audit failed: %s"
      (Option.value ~default:"?" r.Smbm_serve.Daemon.conservation_error)

let loadgen_cmd =
  let policy =
    Arg.(
      value & opt string "LWD"
      & info [ "policy" ] ~docv:"NAME"
          ~doc:"Victim policy of the served instance (see $(b,policies)).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a served switch instance with unpaced MMPP traffic for a \
          fixed duration and report the sustained slot rate and engine slot \
          time tail latency.")
    Term.(
      const run_loadgen $ common_term $ model_term $ policy $ ring_term
      $ duration_term ~default:2.
      $ shards_term)

(* ----- stats / watch: clients of the serve daemon's stats socket ----- *)

let sock_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOCK"
        ~doc:"Path of a running daemon's $(b,--stats-sock) Unix socket.")

(* A daemon binds its stats socket only once its engine is up, so a client
   launched alongside it (CI soak legs, scripts) races startup.  Retry with
   exponential backoff until [timeout] seconds have passed; [timeout <= 0]
   means a single attempt. *)
let query_retry ~timeout ~path cmd =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go delay =
    match Smbm_serve.Telemetry.query ~path cmd with
    | Ok _ as ok -> ok
    | Error msg ->
      let now = Unix.gettimeofday () in
      if now >= deadline then Error msg
      else begin
        Unix.sleepf (Float.min delay (deadline -. now));
        go (Float.min 1.0 (delay *. 2.))
      end
  in
  go 0.05

let connect_timeout_arg =
  Cmdliner.Arg.(
    value & opt float 5.
    & info [ "connect-timeout" ] ~docv:"SECS"
        ~doc:
          "Keep retrying the first connection for up to $(docv) seconds \
           (with backoff) before giving up — tolerates querying a daemon \
           that is still starting.  0 means a single attempt.")

let run_stats sock json health spans connect_timeout =
  let cmd =
    if json then "stats json"
    else if health then "health"
    else if spans then "spans"
    else "stats"
  in
  match query_retry ~timeout:connect_timeout ~path:sock cmd with
  | Ok lines -> List.iter print_endline lines
  | Error msg -> die "stats %s: %s" sock msg

let stats_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Ask for $(b,stats json) (one flat JSON line).")
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Ask for $(b,health): first line $(b,ok)/$(b,degraded), then one \
             line per watchdog rule.")
  in
  let spans =
    Arg.(
      value & flag
      & info [ "spans" ]
          ~doc:
            "Ask for $(b,spans): the slot-stage wall-time profile \
             (ingest/ring_wait/engine/flush).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "One-shot query against a running daemon's stats socket.  Exit \
          status is nonzero when the socket is unreachable or the daemon \
          answers with an error.")
    Term.(const run_stats $ sock_pos $ json $ health $ spans
          $ connect_timeout_arg)

let run_watch sock interval connect_timeout =
  let module J = Smbm_obs.Json in
  let module T = Smbm_serve.Telemetry in
  let module Delta = Smbm_obs.Rolling.Delta in
  let module P = Smbm_obs.Progress in
  if interval <= 0. then die "watch: --interval must be positive";
  let f_float fields k =
    match List.assoc_opt k fields with
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let f_int fields k =
    match List.assoc_opt k fields with Some (J.Int i) -> i | _ -> 0
  in
  let f_str fields k =
    match List.assoc_opt k fields with Some (J.Str s) -> s | _ -> "?"
  in
  (* Client-side rates: diff the cumulative samples of two consecutive
     polls — watch needs nothing from the daemon beyond `stats json`. *)
  let prev = ref None in
  let render fields health_lines =
    let at = f_float fields "at" in
    let samples =
      T.samples_of_json ~prefix:"engine" fields
      @ T.samples_of_json ~prefix:"server" fields
    in
    let buf = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    line "smbm serve @ %s — slot %d, uptime %.1fs, policy %s, buffer %d" sock
      (f_int fields "slot") (f_float fields "uptime") (f_str fields "policy")
      (f_int fields "buffer");
    let occ = f_int fields "ring_occupancy" in
    let cap = max 1 (f_int fields "ring_capacity") in
    line "ring %s %d/%d (max %d)   shed %d slots (%d packets)"
      (P.bar (float_of_int occ /. float_of_int cap))
      occ cap (f_int fields "ring_max") (f_int fields "shed_slots")
      (f_int fields "shed_packets");
    line
      "window %.1fs: %.0f slots/s, %.0f arrivals/s, %.0f accepted/s, %.1f \
       drops/s, %.1f shed/s"
      (f_float fields "window.span")
      (f_float fields "window.slots_per_sec")
      (f_float fields "window.arrivals_per_sec")
      (f_float fields "window.accepted_per_sec")
      (f_float fields "window.drops_per_sec")
      (f_float fields "window.shed_slots_per_sec");
    line "slot time p50 %.1f / p95 %.1f / p99 %.1f us"
      (f_float fields "window.p50_us")
      (f_float fields "window.p95_us")
      (f_float fields "window.p99_us");
    (match !prev with
    | Some (at0, earlier) when at > at0 ->
      let d = Delta.diff ~dt:(at -. at0) ~earlier ~later:samples in
      let r name = Option.value ~default:0.0 (Delta.rate d name) in
      line
        "last %.1fs: %.0f slots/s, %.0f arrivals/s, %.1f drops/s, interval \
         p99 %.1f us"
        (at -. at0) (r "slots") (r "arrivals") (r "dropped")
        (Option.value ~default:0.0 (Delta.quantile d "slot_time_us" 0.99))
    | _ -> line "last interval: warming up");
    prev := Some (at, samples);
    (match health_lines with
    | [] -> ()
    | summary :: rules ->
      line "health: %s" summary;
      List.iter (fun l -> line "  %s" l) rules);
    buf
  in
  let had_success = ref false in
  (* Drift-free cadence: ticks are scheduled against absolute due times
     ([t0 + k*interval]), so render and query time do not accumulate into
     the period; a poll that overruns skips the missed ticks instead of
     shifting every later one. *)
  let t0 = Unix.gettimeofday () in
  let rec loop first tick =
    let query =
      (* Only the very first poll tolerates a daemon still starting; once
         connected, an unreachable socket means the daemon ended. *)
      if !had_success then T.query ~path:sock
      else query_retry ~timeout:connect_timeout ~path:sock
    in
    match query "stats json" with
    | Error msg ->
      if !had_success then begin
        (* The daemon unlinking its socket at shutdown lands here: a clean
           end of watch, not an error. *)
        print_newline ();
        Printf.printf "watch: daemon ended (%s)\n" msg
      end
      else die "watch %s: %s" sock msg
    | Ok [] -> die "watch %s: empty answer" sock
    | Ok (json_line :: _) -> (
      match J.parse_flat json_line with
      | Error m -> die "watch %s: bad stats json: %s" sock m
      | Ok fields ->
        had_success := true;
        let health_lines =
          match T.query ~path:sock "health" with
          | Ok lines -> lines
          | Error _ -> []
        in
        let buf = render fields health_lines in
        print_string
          (if first then Smbm_obs.Progress.clear_screen
           else Smbm_obs.Progress.home);
        print_string (Buffer.contents buf);
        print_string Smbm_obs.Progress.erase_below;
        flush stdout;
        let now = Unix.gettimeofday () in
        let next =
          let due = tick + 1 in
          let behind =
            int_of_float (Float.max 0. ((now -. t0) /. interval)) in
          if behind >= due then behind + 1 else due
        in
        Unix.sleepf (Float.max 0. ((t0 +. (interval *. float_of_int next)) -. now));
        loop false next)
  in
  loop true 0

let watch_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"Seconds between polls (default 1).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Refreshing TTY dashboard over a running daemon's stats socket: \
          server-side window rates plus client-side rates diffed from \
          consecutive $(b,stats json) polls.  Ends cleanly when the daemon \
          shuts down.")
    Term.(const run_watch $ sock_pos $ interval $ connect_timeout_arg)

let run_postmortem action path out =
  let module PM = Smbm_forensics.Postmortem in
  match PM.load path with
  | Error msg -> die "postmortem: %s" msg
  | Ok (meta, trace) -> (
    match action with
    | `Show ->
      Format.printf "@[<v>%a@]@." PM.pp_meta meta;
      Format.printf "trace: %s (%d events, %d sources)@."
        (PM.trace_path (PM.base_of path))
        meta.PM.events
        (List.length trace.Smbm_forensics.Trace_file.sources)
    | `Certify -> (
      match PM.certify meta trace with
      | Ok verdict -> Format.printf "%a@." PM.pp_verdict verdict
      | Error msg -> die "postmortem certify: %s" msg)
    | `Export -> (
      let out =
        match out with
        | Some o -> o
        | None -> PM.base_of path ^ ".trace.jsonl"
      in
      match
        Smbm_forensics.Trace_file.read_events
          (PM.trace_path (PM.base_of path))
      with
      | Error msg -> die "postmortem export: %s" msg
      | Ok events ->
        let oc = open_out out in
        List.iter
          (fun (_, ev) ->
            output_string oc (Smbm_obs.Event.to_json ev);
            output_char oc '\n')
          events;
        close_out oc;
        Printf.printf "postmortem export: %d events -> %s\n"
          (List.length events) out))

let postmortem_cmd =
  let action =
    let act =
      Arg.enum [ ("show", `Show); ("certify", `Certify); ("export", `Export) ]
    in
    Arg.(
      required
      & pos 0 (some act) None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,show) prints the snapshot and trace summary; $(b,certify) \
             replays the dumped window and checks it against the snapshot; \
             $(b,export) writes the trace half as JSONL.")
  in
  let path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DUMP"
          ~doc:
            "Postmortem base path, or either of its files \
             ($(i,BASE).trace.bin / $(i,BASE).meta.jsonl).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Output file for $(b,export) (default \
             $(i,BASE).trace.jsonl).")
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Inspect, certify or export a black-box dump written by $(b,smbm_cli \
          serve --postmortem).  $(b,certify) exits nonzero on replay \
          divergence or a snapshot mismatch.")
    Term.(const run_postmortem $ action $ path $ out)

let () =
  let doc = "shared-memory buffer management for heterogeneous packet processing" in
  let man =
    [
      `S Manpage.s_synopsis;
      `P "$(b,smbm_cli policies) — list the available policies";
      `P
        "$(b,smbm_cli compare) [$(i,OPTIONS)] — all policies in lockstep on \
         one arrival stream";
      `P "$(b,smbm_cli simulate) [$(i,OPTIONS)] — one policy, detailed metrics";
      `P "$(b,smbm_cli sweep) [$(i,OPTIONS)] — arbitrary k/B/C sweep";
      `P "$(b,smbm_cli figure) $(i,PANEL) [$(i,OPTIONS)] — regenerate a Fig. 5 panel (1-9)";
      `P
        "$(b,smbm_cli lowerbound) $(i,THM) — run a theorem's adversarial \
         construction";
      `P "$(b,smbm_cli trace) record|stats $(i,FILE) — record / inspect arrival traces";
      `P "$(b,smbm_cli trace-validate) $(i,FILE) — structural audit of an event trace";
      `P
        "$(b,smbm_cli trace-replay) $(i,FILE) — reconstruct state and metrics \
         from events";
      `P
        "$(b,smbm_cli trace-diff) $(i,FILE_A) [$(i,FILE_B)] — first divergence \
         between two event sources";
      `P
        "$(b,smbm_cli trace-explain) $(i,FILE_A) [$(i,FILE_B)] — charge a \
         throughput gap to loss events";
      `P
        "$(b,smbm_cli trace-convert) $(i,IN) $(i,OUT) — convert an event \
         trace between JSONL and binary, losslessly";
      `P
        "$(b,smbm_cli postmortem) show|certify|export $(i,DUMP) — inspect or \
         replay-certify a black-box dump";
      `P "$(b,smbm_cli certify) [$(i,OPTIONS)] — Theorem 7's mapping routine, live";
      `P
        "$(b,smbm_cli serve) [$(i,OPTIONS)] — online switch daemon with \
         bounded-ring ingest and live reconfiguration";
      `P
        "$(b,smbm_cli loadgen) [$(i,OPTIONS)] — MMPP load generator reporting \
         sustained slot rate and tail latency";
      `P
        "$(b,smbm_cli stats) $(i,SOCK) [--json|--health|--spans] — one-shot \
         query of a daemon's stats socket";
      `P
        "$(b,smbm_cli watch) $(i,SOCK) [--interval $(i,SECS)] — refreshing \
         TTY dashboard over a stats socket";
      `P
        "$(b,smbm_cli bench-diff) $(i,BASELINE) $(i,CURRENT) — gate benchmark \
         JSONL against a committed baseline";
    ]
  in
  let info = Cmd.info "smbm_cli" ~version:"1.0.0" ~doc ~man in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            policies_cmd; compare_cmd; simulate_cmd; figure_cmd;
            lowerbound_cmd; trace_cmd; trace_validate_cmd; trace_replay_cmd;
            trace_diff_cmd; trace_explain_cmd; trace_convert_cmd; certify_cmd;
            sweep_cmd; bench_diff_cmd; serve_cmd; loadgen_cmd; stats_cmd;
            watch_cmd; postmortem_cmd;
          ]))
