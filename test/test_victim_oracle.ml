(* Differential oracle for the incremental victim-selection indexes: every
   push-out policy built twice — [~impl:`Scan] (the original O(n) rescans)
   and [~impl:`Indexed] (the O(log n) switch indexes) — driven in lockstep
   on twin switches under fuzzed traffic, asserting bit-identical decisions
   at every arrival.  Plus pinned tie-break regressions, raising-hook
   invariant checks, and the intra-bucket order contract of Value_queue. *)

open Smbm_core

(* --- lockstep drivers --- *)

let run_proc_lockstep ~works ~buffer ~speedup ~ops ~mk =
  let config = Proc_config.make ~works ~buffer ~speedup () in
  let fast_sw = Proc_switch.create config
  and slow_sw = Proc_switch.create config in
  let fast = mk `Indexed config and slow = mk `Scan config in
  let ok = ref true in
  let apply sw d ~dest =
    match d with
    | Decision.Accept -> ignore (Proc_switch.accept sw ~dest)
    | Decision.Push_out { victim } ->
      ignore (Proc_switch.push_out sw ~victim);
      ignore (Proc_switch.accept sw ~dest)
    | Decision.Drop -> ()
  in
  List.iter
    (fun op ->
      (match op with
      | `Arrival dest ->
        let df = Proc_policy.admit fast fast_sw ~dest
        and ds = Proc_policy.admit slow slow_sw ~dest in
        if not (Decision.equal df ds) then ok := false;
        apply fast_sw df ~dest;
        apply slow_sw ds ~dest
      | `Transmit ->
        ignore (Proc_switch.transmit_phase fast_sw ~on_transmit:ignore);
        ignore (Proc_switch.transmit_phase slow_sw ~on_transmit:ignore)
      | `Flush ->
        ignore (Proc_switch.flush fast_sw);
        ignore (Proc_switch.flush slow_sw));
      Proc_switch.check_invariants fast_sw;
      Proc_switch.check_invariants slow_sw;
      if
        Proc_switch.total_occupied_work fast_sw
        <> Proc_switch.total_occupied_work slow_sw
      then ok := false;
      for j = 0 to Proc_switch.n fast_sw - 1 do
        if Proc_switch.queue_length fast_sw j <> Proc_switch.queue_length slow_sw j
        then ok := false
      done)
    ops;
  !ok

let run_value_lockstep ~ports ~max_value ~buffer ~speedup ~ops ~mk =
  let config = Value_config.make ~ports ~max_value ~buffer ~speedup () in
  let fast_sw = Value_switch.create config
  and slow_sw = Value_switch.create config in
  let fast = mk `Indexed config and slow = mk `Scan config in
  let ok = ref true in
  let apply sw d ~dest ~value =
    match d with
    | Decision.Accept -> ignore (Value_switch.accept sw ~dest ~value)
    | Decision.Push_out { victim } ->
      ignore (Value_switch.push_out sw ~victim);
      ignore (Value_switch.accept sw ~dest ~value)
    | Decision.Drop -> ()
  in
  List.iter
    (fun op ->
      (match op with
      | `Arrival (dest, value) ->
        let df = Value_policy.admit fast fast_sw ~dest ~value
        and ds = Value_policy.admit slow slow_sw ~dest ~value in
        if not (Decision.equal df ds) then ok := false;
        apply fast_sw df ~dest ~value;
        apply slow_sw ds ~dest ~value
      | `Transmit ->
        ignore (Value_switch.transmit_phase fast_sw ~on_transmit:ignore);
        ignore (Value_switch.transmit_phase slow_sw ~on_transmit:ignore)
      | `Flush ->
        ignore (Value_switch.flush fast_sw);
        ignore (Value_switch.flush slow_sw));
      Value_switch.check_invariants fast_sw;
      Value_switch.check_invariants slow_sw;
      if Value_switch.min_value fast_sw <> Value_switch.min_value slow_sw then
        ok := false;
      if
        Value_switch.min_value_port fast_sw
        <> Value_switch.min_value_port slow_sw
      then ok := false;
      for j = 0 to Value_switch.n fast_sw - 1 do
        if
          Value_switch.queue_length fast_sw j
          <> Value_switch.queue_length slow_sw j
        then ok := false
      done)
    ops;
  !ok

(* --- every push-out policy, both implementations, fuzzed traffic --- *)

let proc_policies ~buffer ~n =
  [
    ("LQD", fun impl c -> P_lqd.make ~impl c);
    ("LWD", fun impl c -> P_lwd.make ~impl c);
    ("LWD1", fun impl c -> P_lwd.make ~protect_last:true ~impl c);
    ( "LWD/tie=small-work",
      fun impl c -> P_lwd.make ~tie:P_lwd.Smallest_work ~impl c );
    ( "LWD/tie=long-queue",
      fun impl c -> P_lwd.make ~tie:P_lwd.Longest_queue ~impl c );
    ("BPD", fun impl c -> P_bpd.make ~impl c);
    ("BPD1", fun impl c -> P_bpd.make ~protect_last:true ~impl c);
    ("RSV(0)", fun impl c -> P_reserved.make ~reserve:0 ~impl c);
    ( Printf.sprintf "RSV(%d)" (buffer / n),
      fun impl c -> P_reserved.make ~reserve:(buffer / n) ~impl c );
  ]

let value_policies =
  [
    ("LQD", fun impl c -> V_lqd.make ~impl c);
    ("MVD", fun impl c -> V_mvd.make ~impl c);
    ("MVD1", fun impl c -> V_mvd.make ~protect_last:true ~impl c);
    ("MRD", fun impl c -> V_mrd.make ~impl c);
    ("MRD1", fun impl c -> V_mrd.make ~protect_last:true ~impl c);
  ]

let proc_ops_gen n =
  QCheck2.Gen.(
    list_size (int_range 20 80)
      (frequency
         [
           (6, map (fun d -> `Arrival d) (int_range 0 (n - 1)));
           (2, pure `Transmit);
           (1, pure `Flush);
         ]))

let prop_proc_policies_indexed_matches_scan =
  QCheck2.Test.make
    ~name:"proc push-out policies: indexed victim = scan victim" ~count:150
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* works = array_size (pure n) (int_range 1 4) in
      let* buffer = int_range 1 8 in
      let* speedup = int_range 1 2 in
      let* ops = proc_ops_gen n in
      pure (works, buffer, speedup, ops))
    (fun (works, buffer, speedup, ops) ->
      let n = Array.length works in
      List.for_all
        (fun (_name, mk) -> run_proc_lockstep ~works ~buffer ~speedup ~ops ~mk)
        (proc_policies ~buffer ~n))

let prop_value_policies_indexed_matches_scan =
  QCheck2.Test.make
    ~name:"value push-out policies: indexed victim = scan victim" ~count:150
    QCheck2.Gen.(
      let* ports = int_range 1 6 in
      let* max_value = int_range 1 8 in
      let* buffer = int_range 1 8 in
      let* speedup = int_range 1 2 in
      let* ops =
        list_size (int_range 20 80)
          (frequency
             [
               ( 6,
                 map2
                   (fun d v -> `Arrival (d, v))
                   (int_range 0 (ports - 1))
                   (int_range 1 max_value) );
               (2, pure `Transmit);
               (1, pure `Flush);
             ])
      in
      pure (ports, max_value, buffer, speedup, ops))
    (fun (ports, max_value, buffer, speedup, ops) ->
      List.for_all
        (fun (_name, mk) ->
          run_value_lockstep ~ports ~max_value ~buffer ~speedup ~ops ~mk)
        value_policies)

(* Deterministic soak with k = 130: min/max values cross the 63-bit word
   boundary of Value_queue's occupancy bitset, which the small fuzzed
   configurations above never reach. *)
let test_value_soak_wide_k () =
  let ports = 4 and max_value = 130 and buffer = 32 in
  let ops =
    List.init 2000 (fun i ->
        if i mod 16 = 15 then `Transmit
        else `Arrival (i mod ports, (i * 37 mod max_value) + 1))
  in
  List.iter
    (fun (name, mk) ->
      Alcotest.(check bool)
        (name ^ " lockstep, k = 130")
        true
        (run_value_lockstep ~ports ~max_value ~buffer ~speedup:1 ~ops ~mk))
    value_policies

(* --- pinned tie-break regressions --- *)

let proc_switch ?speedup ~works ~buffer ~lengths () =
  let config = Proc_config.make ~works ~buffer ?speedup () in
  let sw = Proc_switch.create config in
  Array.iteri
    (fun j l ->
      for _ = 1 to l do
        ignore (Proc_switch.accept sw ~dest:j)
      done)
    lengths;
  sw

let test_lqd_tie_largest_index () =
  (* Equal virtual lengths and equal port works: the >=-scan keeps the
     largest index; the indexed path must agree. *)
  let sw = proc_switch ~works:[| 1; 1 |] ~buffer:3 ~lengths:[| 2; 1 |] () in
  Alcotest.(check int) "scan" 1 (P_lqd.select_victim_scan sw ~dest:1);
  Alcotest.(check int) "indexed" 1 (P_lqd.select_victim sw ~dest:1);
  (* Virtual add dominates: dest 0 at virtual length 3 wins outright. *)
  Alcotest.(check int) "scan dest 0" 0 (P_lqd.select_victim_scan sw ~dest:0);
  Alcotest.(check int) "indexed dest 0" 0 (P_lqd.select_victim sw ~dest:0)

let test_lwd_tie_largest_index () =
  (* works [|1;1|], lengths [|1;2|], arrival at 0: virtual totals tie at 2,
     per-packet works tie at 1, so the largest index (queue 1) is evicted —
     not the destination. *)
  let sw = proc_switch ~works:[| 1; 1 |] ~buffer:3 ~lengths:[| 1; 2 |] () in
  Alcotest.(check (option int))
    "scan" (Some 1)
    (P_lwd.select_victim_scan sw ~dest:0);
  Alcotest.(check (option int))
    "indexed" (Some 1)
    (P_lwd.select_victim sw ~dest:0)

let value_switch ~ports ~max_value ~buffer ~queues =
  let config = Value_config.make ~ports ~max_value ~buffer () in
  let sw = Value_switch.create config in
  Array.iteri
    (fun j values ->
      List.iter (fun v -> ignore (Value_switch.accept sw ~dest:j ~value:v)) values)
    queues;
  sw

let test_mrd_tie_smaller_min_then_largest_index () =
  (* Equal ratios (both length 2, sum 4): the queue with the smaller minimum
     value wins. *)
  let sw =
    value_switch ~ports:2 ~max_value:4 ~buffer:4
      ~queues:[| [ 3; 1 ]; [ 2; 2 ] |]
  in
  Alcotest.(check (option int)) "scan" (Some 0) (V_mrd.select_victim_scan sw);
  Alcotest.(check (option int)) "indexed" (Some 0) (V_mrd.select_victim sw);
  (* Equal ratios and equal minima: the largest index wins. *)
  let sw =
    value_switch ~ports:2 ~max_value:4 ~buffer:4
      ~queues:[| [ 2; 2 ]; [ 2; 2 ] |]
  in
  Alcotest.(check (option int)) "scan tie" (Some 1) (V_mrd.select_victim_scan sw);
  Alcotest.(check (option int)) "indexed tie" (Some 1) (V_mrd.select_victim sw)

let test_min_value_port_pinned_tie () =
  (* Several queues hold the buffer minimum: the longest one wins, then the
     smallest port index — and the reported port always holds the reported
     minimum. *)
  let sw =
    value_switch ~ports:3 ~max_value:9 ~buffer:6
      ~queues:[| [ 1 ]; [ 9; 1 ]; [ 1 ] |]
  in
  Alcotest.(check (option int)) "min value" (Some 1) (Value_switch.min_value sw);
  Alcotest.(check (option int))
    "longest min-holder wins" (Some 1)
    (Value_switch.min_value_port sw);
  Alcotest.(check (option int))
    "port holds the minimum" (Some 1)
    (Value_queue.min_value (Value_switch.queue sw 1));
  (* Equal lengths: the smallest index wins. *)
  let sw =
    value_switch ~ports:3 ~max_value:9 ~buffer:6
      ~queues:[| [ 1 ]; [ 1 ]; [ 1 ] |]
  in
  Alcotest.(check (option int))
    "smallest index among equals" (Some 0)
    (Value_switch.min_value_port sw);
  (* Empty switch: no port. *)
  let sw = value_switch ~ports:2 ~max_value:4 ~buffer:4 ~queues:[| []; [] |] in
  Alcotest.(check (option int)) "empty" None (Value_switch.min_value_port sw)

(* --- raising hooks leave invariants intact --- *)

let test_work_queue_raising_hook () =
  let q = Work_queue.create ~work:2 in
  let mk id = Packet.Proc.make ~id ~dest:0 ~work:2 ~arrival:0 in
  Work_queue.push q (mk 0);
  Work_queue.push q (mk 1);
  (try
     ignore
       (Work_queue.process q ~cycles:4 ~on_transmit:(fun _ -> raise Exit));
     Alcotest.fail "hook exception swallowed"
   with Exit -> ());
  (* The transmitted packet is fully accounted: one packet left, its
     residual backing the cached total. *)
  Alcotest.(check int) "length" 1 (Work_queue.length q);
  let recomputed =
    List.fold_left
      (fun acc (p : Packet.Proc.t) -> acc + p.residual)
      0 (Work_queue.to_list q)
  in
  Alcotest.(check int) "total work" recomputed (Work_queue.total_work q);
  (* Processing resumes normally afterwards. *)
  let sent = Work_queue.process q ~cycles:4 ~on_transmit:ignore in
  Alcotest.(check int) "resumed" 1 sent;
  Alcotest.(check int) "drained" 0 (Work_queue.total_work q)

let test_proc_switch_raising_hook () =
  let sw =
    proc_switch ~speedup:2 ~works:[| 2; 3 |] ~buffer:4 ~lengths:[| 2; 2 |] ()
  in
  (try
     ignore
       (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> raise Exit));
     Alcotest.fail "hook exception swallowed"
   with Exit -> ());
  Proc_switch.check_invariants sw;
  Alcotest.(check int) "occupancy" 3 (Proc_switch.occupancy sw);
  (* Victim selection still answers correctly off the re-validated index. *)
  Alcotest.(check int) "post-raise victim" 1 (P_lqd.select_victim sw ~dest:1);
  (* And draining the rest keeps everything consistent. *)
  let rec drain () =
    if Proc_switch.occupancy sw > 0 then begin
      ignore (Proc_switch.transmit_phase sw ~on_transmit:ignore);
      Proc_switch.check_invariants sw;
      drain ()
    end
  in
  drain ();
  Alcotest.(check int) "all work drained" 0 (Proc_switch.total_occupied_work sw)

let test_value_switch_raising_hook () =
  let sw =
    value_switch ~ports:2 ~max_value:4 ~buffer:6
      ~queues:[| [ 4; 2 ]; [ 3; 1 ] |]
  in
  (try
     ignore
       (Value_switch.transmit_phase sw ~on_transmit:(fun _ -> raise Exit));
     Alcotest.fail "hook exception swallowed"
   with Exit -> ());
  Value_switch.check_invariants sw;
  Alcotest.(check int) "occupancy" 3 (Value_switch.occupancy sw);
  (* The minimum tracker survived the interrupted phase. *)
  Alcotest.(check (option int)) "min value" (Some 1) (Value_switch.min_value sw);
  Alcotest.(check (option int)) "min port" (Some 1) (Value_switch.min_value_port sw)

(* --- Value_queue intra-bucket order contract --- *)

let test_value_queue_intra_bucket_order () =
  let q = Value_queue.create ~k:5 in
  let mk id value = Packet.Value.make ~id ~dest:0 ~value ~arrival:0 in
  (* Three packets of equal value, pushed in id order 0, 1, 2. *)
  List.iter (Value_queue.push q) [ mk 0 3; mk 1 3; mk 2 3 ];
  (* pop_min evicts the *youngest* of the minimum bucket (Deque.pop_back):
     push-out prefers discarding the most recent arrival. *)
  Alcotest.(check int) "pop_min youngest" 2 (Value_queue.pop_min q).Packet.Value.id;
  (* pop_max transmits the *oldest* of the maximum bucket (Deque.pop_front):
     FIFO order among equal values on the wire. *)
  Alcotest.(check int) "pop_max oldest" 0 (Value_queue.pop_max q).Packet.Value.id;
  Alcotest.(check int) "one left" 1 (Value_queue.length q);
  Alcotest.(check int) "middle remains" 1 (Value_queue.pop_max q).Packet.Value.id;
  (* Mixed values: min/max pick the right buckets and keep per-bucket FIFO. *)
  List.iter (Value_queue.push q) [ mk 10 2; mk 11 5; mk 12 2; mk 13 5 ];
  Alcotest.(check int) "min bucket youngest" 12
    (Value_queue.pop_min q).Packet.Value.id;
  Alcotest.(check int) "max bucket oldest" 11
    (Value_queue.pop_max q).Packet.Value.id

let suite =
  [
    Qc.to_alcotest prop_proc_policies_indexed_matches_scan;
    Qc.to_alcotest prop_value_policies_indexed_matches_scan;
    Alcotest.test_case "value soak, k crosses bitset word" `Slow
      test_value_soak_wide_k;
    Alcotest.test_case "LQD tie keeps largest index" `Quick
      test_lqd_tie_largest_index;
    Alcotest.test_case "LWD tie keeps largest index" `Quick
      test_lwd_tie_largest_index;
    Alcotest.test_case "MRD equal-ratio ties" `Quick
      test_mrd_tie_smaller_min_then_largest_index;
    Alcotest.test_case "min_value_port pinned tie" `Quick
      test_min_value_port_pinned_tie;
    Alcotest.test_case "Work_queue raising hook" `Quick
      test_work_queue_raising_hook;
    Alcotest.test_case "Proc_switch raising hook" `Quick
      test_proc_switch_raising_hook;
    Alcotest.test_case "Value_switch raising hook" `Quick
      test_value_switch_raising_hook;
    Alcotest.test_case "Value_queue intra-bucket order" `Quick
      test_value_queue_intra_bucket_order;
  ]
