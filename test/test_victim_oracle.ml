(* Differential oracle for the incremental victim-selection indexes AND the
   flat struct-of-arrays switch backend: every push-out policy built three
   ways — [~impl:`Scan] (the original O(n) rescans on the linked switch),
   [~impl:`Indexed] (the O(log n) switch indexes on the linked switch) and
   [~impl:`Flat] (indexed selection on the flat SoA backend) — driven in
   lockstep on triplet switches under fuzzed traffic (including mid-run
   [set_buffer] resizes), asserting bit-identical decisions at every arrival
   and bit-identical transmitted packets (ids included) at every
   transmission phase.  Plus pinned tie-break regressions, raising-hook
   invariant checks on both backends, and the intra-bucket order contract
   of Value_queue. *)

open Smbm_core

(* --- lockstep drivers --- *)

let impls = [ `Indexed; `Scan; `Flat ]

let run_proc_lockstep ~works ~buffer ~speedup ~ops ~mk =
  let config = Proc_config.make ~works ~buffer ~speedup () in
  let arm impl =
    let policy = mk impl config in
    (* The policy's backend field is the seam under test: `Flat builds the
       SoA switch, the others the linked reference. *)
    (policy, Proc_switch.create ~backend:policy.Proc_policy.backend config)
  in
  let arms = List.map arm impls in
  let ok = ref true in
  let all_equal = function
    | [] -> true
    | x0 :: rest -> List.for_all (( = ) x0) rest
  in
  let apply sw d ~dest =
    match d with
    | Decision.Accept -> Proc_switch.accept_unit sw ~dest
    | Decision.Push_out { victim } ->
      Proc_switch.push_out_unit sw ~victim;
      Proc_switch.accept_unit sw ~dest
    | Decision.Drop -> ()
  in
  List.iter
    (fun op ->
      (match op with
      | `Arrival dest ->
        let ds =
          List.map (fun (p, sw) -> Proc_policy.admit p sw ~dest) arms
        in
        (match ds with
        | d0 :: rest ->
          if not (List.for_all (Decision.equal d0) rest) then ok := false
        | [] -> ());
        List.iter2 (fun (_, sw) d -> apply sw d ~dest) arms ds
      | `Transmit ->
        (* Transmitted packets must agree field-for-field — ids included —
           across all three arms. *)
        let sent =
          List.map
            (fun (_, sw) ->
              let acc = ref [] in
              ignore
                (Proc_switch.transmit_phase sw
                   ~on_transmit:(fun (p : Packet.Proc.t) ->
                     acc := (p.id, p.dest, p.work, p.arrival) :: !acc));
              List.rev !acc)
            arms
        in
        if not (all_equal sent) then ok := false
      | `Set_buffer b ->
        (* Same clamp on every arm: occupancies are lockstep-identical, so
           the effective bound is too (shrinking below occupancy is
           refused by contract). *)
        let occ = Proc_switch.occupancy (snd (List.hd arms)) in
        let b = max 1 (max occ b) in
        List.iter (fun (_, sw) -> Proc_switch.set_buffer sw b) arms
      | `Flush ->
        if
          not
            (all_equal (List.map (fun (_, sw) -> Proc_switch.flush sw) arms))
        then ok := false);
      List.iter (fun (_, sw) -> Proc_switch.check_invariants sw) arms;
      match arms with
      | [] -> ()
      | (_, sw0) :: rest ->
        List.iter
          (fun (_, sw) ->
            if Proc_switch.occupancy sw <> Proc_switch.occupancy sw0 then
              ok := false;
            if Proc_switch.buffer sw <> Proc_switch.buffer sw0 then
              ok := false;
            if
              Proc_switch.total_occupied_work sw
              <> Proc_switch.total_occupied_work sw0
            then ok := false;
            for j = 0 to Proc_switch.n sw0 - 1 do
              if
                Proc_switch.queue_length sw j
                <> Proc_switch.queue_length sw0 j
                || Proc_switch.queue_work sw j <> Proc_switch.queue_work sw0 j
              then ok := false
            done)
          rest)
    ops;
  !ok

let run_value_lockstep ~ports ~max_value ~buffer ~speedup ~ops ~mk =
  let config = Value_config.make ~ports ~max_value ~buffer ~speedup () in
  let arm impl =
    let policy = mk impl config in
    (policy, Value_switch.create ~backend:policy.Value_policy.backend config)
  in
  let arms = List.map arm impls in
  let ok = ref true in
  let all_equal = function
    | [] -> true
    | x0 :: rest -> List.for_all (( = ) x0) rest
  in
  let apply sw d ~dest ~value =
    match d with
    | Decision.Accept -> Value_switch.accept_unit sw ~dest ~value
    | Decision.Push_out { victim } ->
      ignore (Value_switch.push_out_lost sw ~victim : int);
      Value_switch.accept_unit sw ~dest ~value
    | Decision.Drop -> ()
  in
  List.iter
    (fun op ->
      (match op with
      | `Arrival (dest, value) ->
        let ds =
          List.map (fun (p, sw) -> Value_policy.admit p sw ~dest ~value) arms
        in
        (match ds with
        | d0 :: rest ->
          if not (List.for_all (Decision.equal d0) rest) then ok := false
        | [] -> ());
        List.iter2 (fun (_, sw) d -> apply sw d ~dest ~value) arms ds
      | `Transmit ->
        let sent =
          List.map
            (fun (_, sw) ->
              let acc = ref [] in
              ignore
                (Value_switch.transmit_phase sw
                   ~on_transmit:(fun (p : Packet.Value.t) ->
                     acc := (p.id, p.dest, p.value, p.arrival) :: !acc));
              List.rev !acc)
            arms
        in
        if not (all_equal sent) then ok := false
      | `Set_buffer b ->
        let occ = Value_switch.occupancy (snd (List.hd arms)) in
        let b = max 1 (max occ b) in
        List.iter (fun (_, sw) -> Value_switch.set_buffer sw b) arms
      | `Flush ->
        if
          not
            (all_equal (List.map (fun (_, sw) -> Value_switch.flush sw) arms))
        then ok := false);
      List.iter (fun (_, sw) -> Value_switch.check_invariants sw) arms;
      match arms with
      | [] -> ()
      | (_, sw0) :: rest ->
        List.iter
          (fun (_, sw) ->
            if Value_switch.occupancy sw <> Value_switch.occupancy sw0 then
              ok := false;
            if Value_switch.buffer sw <> Value_switch.buffer sw0 then
              ok := false;
            if Value_switch.min_value sw <> Value_switch.min_value sw0 then
              ok := false;
            if
              Value_switch.min_value_port sw
              <> Value_switch.min_value_port sw0
            then ok := false;
            for j = 0 to Value_switch.n sw0 - 1 do
              if
                Value_switch.queue_length sw j
                <> Value_switch.queue_length sw0 j
                || Value_switch.queue_total_value sw j
                   <> Value_switch.queue_total_value sw0 j
                || Value_switch.queue_min_value sw j
                   <> Value_switch.queue_min_value sw0 j
              then ok := false
            done)
          rest)
    ops;
  !ok

(* --- every push-out policy, all three implementations, fuzzed traffic --- *)

let proc_policies ~buffer ~n =
  [
    ("LQD", fun impl c -> P_lqd.make ~impl c);
    ("LWD", fun impl c -> P_lwd.make ~impl c);
    ("LWD1", fun impl c -> P_lwd.make ~protect_last:true ~impl c);
    ( "LWD/tie=small-work",
      fun impl c -> P_lwd.make ~tie:P_lwd.Smallest_work ~impl c );
    ( "LWD/tie=long-queue",
      fun impl c -> P_lwd.make ~tie:P_lwd.Longest_queue ~impl c );
    ("BPD", fun impl c -> P_bpd.make ~impl c);
    ("BPD1", fun impl c -> P_bpd.make ~protect_last:true ~impl c);
    ("RSV(0)", fun impl c -> P_reserved.make ~reserve:0 ~impl c);
    ( Printf.sprintf "RSV(%d)" (buffer / n),
      fun impl c -> P_reserved.make ~reserve:(buffer / n) ~impl c );
  ]

let value_policies =
  [
    ("LQD", fun impl c -> V_lqd.make ~impl c);
    ("MVD", fun impl c -> V_mvd.make ~impl c);
    ("MVD1", fun impl c -> V_mvd.make ~protect_last:true ~impl c);
    ("MRD", fun impl c -> V_mrd.make ~impl c);
    ("MRD1", fun impl c -> V_mrd.make ~protect_last:true ~impl c);
  ]

let proc_ops_gen n =
  QCheck2.Gen.(
    list_size (int_range 20 80)
      (frequency
         [
           (6, map (fun d -> `Arrival d) (int_range 0 (n - 1)));
           (2, pure `Transmit);
           (1, map (fun b -> `Set_buffer b) (int_range 1 12));
           (1, pure `Flush);
         ]))

let prop_proc_policies_lockstep =
  QCheck2.Test.make
    ~name:"proc push-out policies: scan = indexed = flat lockstep" ~count:150
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* works = array_size (pure n) (int_range 1 4) in
      let* buffer = int_range 1 8 in
      let* speedup = int_range 1 2 in
      let* ops = proc_ops_gen n in
      pure (works, buffer, speedup, ops))
    (fun (works, buffer, speedup, ops) ->
      let n = Array.length works in
      List.for_all
        (fun (_name, mk) -> run_proc_lockstep ~works ~buffer ~speedup ~ops ~mk)
        (proc_policies ~buffer ~n))

let prop_value_policies_lockstep =
  QCheck2.Test.make
    ~name:"value push-out policies: scan = indexed = flat lockstep" ~count:150
    QCheck2.Gen.(
      let* ports = int_range 1 6 in
      let* max_value = int_range 1 8 in
      let* buffer = int_range 1 8 in
      let* speedup = int_range 1 2 in
      let* ops =
        list_size (int_range 20 80)
          (frequency
             [
               ( 6,
                 map2
                   (fun d v -> `Arrival (d, v))
                   (int_range 0 (ports - 1))
                   (int_range 1 max_value) );
               (2, pure `Transmit);
               (1, map (fun b -> `Set_buffer b) (int_range 1 12));
               (1, pure `Flush);
             ])
      in
      pure (ports, max_value, buffer, speedup, ops))
    (fun (ports, max_value, buffer, speedup, ops) ->
      List.for_all
        (fun (_name, mk) ->
          run_value_lockstep ~ports ~max_value ~buffer ~speedup ~ops ~mk)
        value_policies)

(* Deterministic soak with k = 130: min/max values cross the 63-bit word
   boundary of the occupancy bitsets (both Value_queue's and the flat
   backend's port-major copies), which the small fuzzed configurations
   above never reach.  Periodic resizes exercise flat slab growth at
   width. *)
let test_value_soak_wide_k () =
  let ports = 4 and max_value = 130 and buffer = 32 in
  let ops =
    List.init 2000 (fun i ->
        if i mod 97 = 96 then `Set_buffer (16 + (i mod 48))
        else if i mod 16 = 15 then `Transmit
        else `Arrival (i mod ports, (i * 37 mod max_value) + 1))
  in
  List.iter
    (fun (name, mk) ->
      Alcotest.(check bool)
        (name ^ " lockstep, k = 130")
        true
        (run_value_lockstep ~ports ~max_value ~buffer ~speedup:1 ~ops ~mk))
    value_policies

(* --- fused batch kernels = per-packet fold --- *)

(* The fused [admit_batch] kernels must be decision-identical to folding
   [admit] packet-by-packet: same victims, same admission counters, same
   switch state and transmitted packets — including across mid-run
   [set_buffer] resizes.  Two same-backend switches run in lockstep, one
   through the kernel, one through the per-packet reference fold. *)

let run_proc_batch_lockstep ~works ~buffer ~speedup ~ops ~mk =
  let config = Proc_config.make ~works ~buffer ~speedup () in
  let policy : Proc_policy.t = mk `Flat config in
  match Proc_policy.admit_batch policy with
  | None -> false (* every flat-impl push-out policy must provide a kernel *)
  | Some kernel ->
    let sw_k = Proc_switch.create ~backend:policy.Proc_policy.backend config in
    let sw_r = Proc_switch.create ~backend:policy.Proc_policy.backend config in
    let counters = Admission.counters () in
    let batch = Arrival_batch.create () in
    let ok = ref true in
    List.iter
      (fun op ->
        (match op with
        | `Batch dests ->
          Arrival_batch.clear batch;
          List.iter
            (fun d -> Arrival_batch.push batch ~dest:d ~value:1)
            dests;
          Admission.reset counters;
          kernel sw_k batch counters;
          let accepted = ref 0 and pushed = ref 0 and dropped = ref 0 in
          List.iter
            (fun dest ->
              match Proc_policy.admit policy sw_r ~dest with
              | Decision.Accept ->
                Proc_switch.accept_unit sw_r ~dest;
                incr accepted
              | Decision.Push_out { victim } ->
                Proc_switch.push_out_unit sw_r ~victim;
                Proc_switch.accept_unit sw_r ~dest;
                incr pushed;
                incr accepted
              | Decision.Drop -> incr dropped)
            dests;
          if
            counters.Admission.accepted <> !accepted
            || counters.Admission.pushed_out <> !pushed
            || counters.Admission.dropped <> !dropped
          then ok := false
        | `Transmit ->
          let sent sw =
            let acc = ref [] in
            ignore
              (Proc_switch.transmit_phase sw
                 ~on_transmit:(fun (p : Packet.Proc.t) ->
                   acc := (p.id, p.dest, p.work, p.arrival) :: !acc));
            List.rev !acc
          in
          if sent sw_k <> sent sw_r then ok := false
        | `Set_buffer b ->
          let b = max 1 (max (Proc_switch.occupancy sw_r) b) in
          Proc_switch.set_buffer sw_k b;
          Proc_switch.set_buffer sw_r b
        | `Flush ->
          if Proc_switch.flush sw_k <> Proc_switch.flush sw_r then ok := false);
        Proc_switch.check_invariants sw_k;
        Proc_switch.check_invariants sw_r;
        if
          Proc_switch.occupancy sw_k <> Proc_switch.occupancy sw_r
          || Proc_switch.buffer sw_k <> Proc_switch.buffer sw_r
        then ok := false;
        for j = 0 to Proc_switch.n sw_r - 1 do
          if
            Proc_switch.queue_length sw_k j <> Proc_switch.queue_length sw_r j
            || Proc_switch.queue_work sw_k j <> Proc_switch.queue_work sw_r j
          then ok := false
        done)
      ops;
    !ok

let run_value_batch_lockstep ~ports ~max_value ~buffer ~speedup ~ops ~mk =
  let config = Value_config.make ~ports ~max_value ~buffer ~speedup () in
  let policy : Value_policy.t = mk `Flat config in
  match Value_policy.admit_batch policy with
  | None -> false
  | Some kernel ->
    let sw_k = Value_switch.create ~backend:policy.Value_policy.backend config in
    let sw_r = Value_switch.create ~backend:policy.Value_policy.backend config in
    let counters = Admission.counters () in
    let batch = Arrival_batch.create () in
    let ok = ref true in
    List.iter
      (fun op ->
        (match op with
        | `Batch arrivals ->
          Arrival_batch.clear batch;
          List.iter
            (fun (d, v) -> Arrival_batch.push batch ~dest:d ~value:v)
            arrivals;
          Admission.reset counters;
          kernel sw_k batch counters;
          let accepted = ref 0 and pushed = ref 0 and dropped = ref 0 in
          List.iter
            (fun (dest, value) ->
              match Value_policy.admit policy sw_r ~dest ~value with
              | Decision.Accept ->
                Value_switch.accept_unit sw_r ~dest ~value;
                incr accepted
              | Decision.Push_out { victim } ->
                ignore (Value_switch.push_out_lost sw_r ~victim : int);
                Value_switch.accept_unit sw_r ~dest ~value;
                incr pushed;
                incr accepted
              | Decision.Drop -> incr dropped)
            arrivals;
          if
            counters.Admission.accepted <> !accepted
            || counters.Admission.pushed_out <> !pushed
            || counters.Admission.dropped <> !dropped
          then ok := false
        | `Transmit ->
          let sent sw =
            let acc = ref [] in
            ignore
              (Value_switch.transmit_phase sw
                 ~on_transmit:(fun (p : Packet.Value.t) ->
                   acc := (p.id, p.dest, p.value, p.arrival) :: !acc));
            List.rev !acc
          in
          if sent sw_k <> sent sw_r then ok := false
        | `Set_buffer b ->
          let b = max 1 (max (Value_switch.occupancy sw_r) b) in
          Value_switch.set_buffer sw_k b;
          Value_switch.set_buffer sw_r b
        | `Flush ->
          if Value_switch.flush sw_k <> Value_switch.flush sw_r then
            ok := false);
        Value_switch.check_invariants sw_k;
        Value_switch.check_invariants sw_r;
        if
          Value_switch.occupancy sw_k <> Value_switch.occupancy sw_r
          || Value_switch.buffer sw_k <> Value_switch.buffer sw_r
          || Value_switch.min_value sw_k <> Value_switch.min_value sw_r
        then ok := false;
        for j = 0 to Value_switch.n sw_r - 1 do
          if
            Value_switch.queue_length sw_k j <> Value_switch.queue_length sw_r j
            || Value_switch.queue_total_value sw_k j
               <> Value_switch.queue_total_value sw_r j
            || Value_switch.queue_min_value sw_k j
               <> Value_switch.queue_min_value sw_r j
          then ok := false
        done)
      ops;
    !ok

let prop_proc_batch_lockstep =
  QCheck2.Test.make
    ~name:"proc admit_batch kernels = per-packet fold lockstep" ~count:120
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* works = array_size (pure n) (int_range 1 4) in
      let* buffer = int_range 1 8 in
      let* speedup = int_range 1 2 in
      let* ops =
        list_size (int_range 10 40)
          (frequency
             [
               ( 6,
                 map
                   (fun ds -> `Batch ds)
                   (list_size (int_range 0 12) (int_range 0 (n - 1))) );
               (2, pure `Transmit);
               (1, map (fun b -> `Set_buffer b) (int_range 1 12));
               (1, pure `Flush);
             ])
      in
      pure (works, buffer, speedup, ops))
    (fun (works, buffer, speedup, ops) ->
      let n = Array.length works in
      List.for_all
        (fun (_name, mk) ->
          run_proc_batch_lockstep ~works ~buffer ~speedup ~ops ~mk)
        (proc_policies ~buffer ~n))

let prop_value_batch_lockstep =
  QCheck2.Test.make
    ~name:"value admit_batch kernels = per-packet fold lockstep" ~count:120
    QCheck2.Gen.(
      let* ports = int_range 1 6 in
      let* max_value = int_range 1 8 in
      let* buffer = int_range 1 8 in
      let* speedup = int_range 1 2 in
      let* ops =
        list_size (int_range 10 40)
          (frequency
             [
               ( 6,
                 map
                   (fun a -> `Batch a)
                   (list_size (int_range 0 12)
                      (pair (int_range 0 (ports - 1)) (int_range 1 max_value)))
               );
               (2, pure `Transmit);
               (1, map (fun b -> `Set_buffer b) (int_range 1 12));
               (1, pure `Flush);
             ])
      in
      pure (ports, max_value, buffer, speedup, ops))
    (fun (ports, max_value, buffer, speedup, ops) ->
      List.for_all
        (fun (_name, mk) ->
          run_value_batch_lockstep ~ports ~max_value ~buffer ~speedup ~ops ~mk)
        value_policies)

(* --- packed trace slabs = owning columns --- *)

(* [Trace.Compact.pack] only changes memory topology (zero-copy windows of
   one shared off-heap slab per column); content, [equal] and [signature]
   must be invariant, and a heap round-trip through [to_trace]/[of_trace]
   (int arrays and lists) must reproduce the same signature. *)
let prop_compact_pack_signature =
  QCheck2.Test.make
    ~name:"Trace.Compact: packed slab windows = owning columns" ~count:100
    QCheck2.Gen.(
      let arrival =
        map2
          (fun d v -> Arrival.make ~dest:d ~value:v ())
          (int_range 0 5) (int_range 1 9)
      in
      let slot = list_size (int_range 0 5) arrival in
      let trace = map Array.of_list (list_size (int_range 0 12) slot) in
      list_size (int_range 0 5) trace)
    (fun traces ->
      let module C = Smbm_traffic.Trace.Compact in
      let compacts =
        List.map
          (fun t -> C.of_trace (Smbm_traffic.Trace.of_slots t))
          traces
      in
      let packed = C.pack compacts in
      List.length packed = List.length compacts
      && List.for_all2
           (fun own win ->
             C.equal own win
             && String.equal (C.signature own) (C.signature win)
             && String.equal (C.signature own)
                  (C.signature (C.of_trace (C.to_trace win))))
           compacts packed)

(* --- pinned tie-break regressions --- *)

let proc_switch ?(backend = `Linked) ?speedup ~works ~buffer ~lengths () =
  let config = Proc_config.make ~works ~buffer ?speedup () in
  let sw = Proc_switch.create ~backend config in
  Array.iteri
    (fun j l ->
      for _ = 1 to l do
        Proc_switch.accept_unit sw ~dest:j
      done)
    lengths;
  sw

let test_lqd_tie_largest_index () =
  (* Equal virtual lengths and equal port works: the >=-scan keeps the
     largest index; the indexed path must agree. *)
  let sw = proc_switch ~works:[| 1; 1 |] ~buffer:3 ~lengths:[| 2; 1 |] () in
  Alcotest.(check int) "scan" 1 (P_lqd.select_victim_scan sw ~dest:1);
  Alcotest.(check int) "indexed" 1 (P_lqd.select_victim sw ~dest:1);
  (* Virtual add dominates: dest 0 at virtual length 3 wins outright. *)
  Alcotest.(check int) "scan dest 0" 0 (P_lqd.select_victim_scan sw ~dest:0);
  Alcotest.(check int) "indexed dest 0" 0 (P_lqd.select_victim sw ~dest:0)

let test_lwd_tie_largest_index () =
  (* works [|1;1|], lengths [|1;2|], arrival at 0: virtual totals tie at 2,
     per-packet works tie at 1, so the largest index (queue 1) is evicted —
     not the destination. *)
  let sw = proc_switch ~works:[| 1; 1 |] ~buffer:3 ~lengths:[| 1; 2 |] () in
  Alcotest.(check (option int))
    "scan" (Some 1)
    (P_lwd.select_victim_scan sw ~dest:0);
  Alcotest.(check (option int))
    "indexed" (Some 1)
    (P_lwd.select_victim sw ~dest:0)

let value_switch ?(backend = `Linked) ~ports ~max_value ~buffer ~queues () =
  let config = Value_config.make ~ports ~max_value ~buffer () in
  let sw = Value_switch.create ~backend config in
  Array.iteri
    (fun j values ->
      List.iter (fun v -> Value_switch.accept_unit sw ~dest:j ~value:v) values)
    queues;
  sw

let test_mrd_tie_smaller_min_then_largest_index () =
  (* Equal ratios (both length 2, sum 4): the queue with the smaller minimum
     value wins. *)
  let sw =
    value_switch ~ports:2 ~max_value:4 ~buffer:4
      ~queues:[| [ 3; 1 ]; [ 2; 2 ] |] ()
  in
  Alcotest.(check (option int)) "scan" (Some 0) (V_mrd.select_victim_scan sw);
  Alcotest.(check (option int)) "indexed" (Some 0) (V_mrd.select_victim sw);
  (* Equal ratios and equal minima: the largest index wins. *)
  let sw =
    value_switch ~ports:2 ~max_value:4 ~buffer:4
      ~queues:[| [ 2; 2 ]; [ 2; 2 ] |] ()
  in
  Alcotest.(check (option int)) "scan tie" (Some 1) (V_mrd.select_victim_scan sw);
  Alcotest.(check (option int)) "indexed tie" (Some 1) (V_mrd.select_victim sw)

let test_min_value_port_pinned_tie () =
  (* Several queues hold the buffer minimum: the longest one wins, then the
     smallest port index — and the reported port always holds the reported
     minimum.  The tie is pinned on both backends. *)
  List.iter
    (fun backend ->
      let sw =
        value_switch ~backend ~ports:3 ~max_value:9 ~buffer:6
          ~queues:[| [ 1 ]; [ 9; 1 ]; [ 1 ] |] ()
      in
      Alcotest.(check (option int))
        "min value" (Some 1) (Value_switch.min_value sw);
      Alcotest.(check (option int))
        "longest min-holder wins" (Some 1)
        (Value_switch.min_value_port sw);
      Alcotest.(check (option int))
        "port holds the minimum" (Some 1)
        (Value_switch.queue_min_value sw 1);
      (* Equal lengths: the smallest index wins. *)
      let sw =
        value_switch ~backend ~ports:3 ~max_value:9 ~buffer:6
          ~queues:[| [ 1 ]; [ 1 ]; [ 1 ] |] ()
      in
      Alcotest.(check (option int))
        "smallest index among equals" (Some 0)
        (Value_switch.min_value_port sw);
      (* Empty switch: no port. *)
      let sw =
        value_switch ~backend ~ports:2 ~max_value:4 ~buffer:4
          ~queues:[| []; [] |] ()
      in
      Alcotest.(check (option int)) "empty" None (Value_switch.min_value_port sw))
    [ `Linked; `Flat ]

(* --- raising hooks leave invariants intact --- *)

let test_work_queue_raising_hook () =
  let q = Work_queue.create ~work:2 in
  let mk id = Packet.Proc.make ~id ~dest:0 ~work:2 ~arrival:0 in
  Work_queue.push q (mk 0);
  Work_queue.push q (mk 1);
  (try
     ignore
       (Work_queue.process q ~cycles:4 ~on_transmit:(fun _ -> raise Exit));
     Alcotest.fail "hook exception swallowed"
   with Exit -> ());
  (* The transmitted packet is fully accounted: one packet left, its
     residual backing the cached total. *)
  Alcotest.(check int) "length" 1 (Work_queue.length q);
  let recomputed =
    List.fold_left
      (fun acc (p : Packet.Proc.t) -> acc + p.residual)
      0 (Work_queue.to_list q)
  in
  Alcotest.(check int) "total work" recomputed (Work_queue.total_work q);
  (* Processing resumes normally afterwards. *)
  let sent = Work_queue.process q ~cycles:4 ~on_transmit:ignore in
  Alcotest.(check int) "resumed" 1 sent;
  Alcotest.(check int) "drained" 0 (Work_queue.total_work q)

let test_proc_switch_raising_hook backend () =
  let sw =
    proc_switch ~backend ~speedup:2 ~works:[| 2; 3 |] ~buffer:4
      ~lengths:[| 2; 2 |] ()
  in
  (try
     ignore
       (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> raise Exit));
     Alcotest.fail "hook exception swallowed"
   with Exit -> ());
  Proc_switch.check_invariants sw;
  Alcotest.(check int) "occupancy" 3 (Proc_switch.occupancy sw);
  (* Victim selection still answers correctly off the re-validated index. *)
  Alcotest.(check int) "post-raise victim" 1 (P_lqd.select_victim sw ~dest:1);
  (* And draining the rest keeps everything consistent. *)
  let rec drain () =
    if Proc_switch.occupancy sw > 0 then begin
      ignore (Proc_switch.transmit_phase sw ~on_transmit:ignore);
      Proc_switch.check_invariants sw;
      drain ()
    end
  in
  drain ();
  Alcotest.(check int) "all work drained" 0 (Proc_switch.total_occupied_work sw)

let test_value_switch_raising_hook backend () =
  let sw =
    value_switch ~backend ~ports:2 ~max_value:4 ~buffer:6
      ~queues:[| [ 4; 2 ]; [ 3; 1 ] |] ()
  in
  (try
     ignore
       (Value_switch.transmit_phase sw ~on_transmit:(fun _ -> raise Exit));
     Alcotest.fail "hook exception swallowed"
   with Exit -> ());
  Value_switch.check_invariants sw;
  Alcotest.(check int) "occupancy" 3 (Value_switch.occupancy sw);
  (* The minimum tracker survived the interrupted phase. *)
  Alcotest.(check (option int)) "min value" (Some 1) (Value_switch.min_value sw);
  Alcotest.(check (option int)) "min port" (Some 1) (Value_switch.min_value_port sw)

(* --- Value_queue intra-bucket order contract --- *)

let test_value_queue_intra_bucket_order () =
  let q = Value_queue.create ~k:5 in
  let mk id value = Packet.Value.make ~id ~dest:0 ~value ~arrival:0 in
  (* Three packets of equal value, pushed in id order 0, 1, 2. *)
  List.iter (Value_queue.push q) [ mk 0 3; mk 1 3; mk 2 3 ];
  (* pop_min evicts the *youngest* of the minimum bucket (Deque.pop_back):
     push-out prefers discarding the most recent arrival. *)
  Alcotest.(check int) "pop_min youngest" 2 (Value_queue.pop_min q).Packet.Value.id;
  (* pop_max transmits the *oldest* of the maximum bucket (Deque.pop_front):
     FIFO order among equal values on the wire. *)
  Alcotest.(check int) "pop_max oldest" 0 (Value_queue.pop_max q).Packet.Value.id;
  Alcotest.(check int) "one left" 1 (Value_queue.length q);
  Alcotest.(check int) "middle remains" 1 (Value_queue.pop_max q).Packet.Value.id;
  (* Mixed values: min/max pick the right buckets and keep per-bucket FIFO. *)
  List.iter (Value_queue.push q) [ mk 10 2; mk 11 5; mk 12 2; mk 13 5 ];
  Alcotest.(check int) "min bucket youngest" 12
    (Value_queue.pop_min q).Packet.Value.id;
  Alcotest.(check int) "max bucket oldest" 11
    (Value_queue.pop_max q).Packet.Value.id

let suite =
  [
    Qc.to_alcotest prop_proc_policies_lockstep;
    Qc.to_alcotest prop_value_policies_lockstep;
    Qc.to_alcotest prop_proc_batch_lockstep;
    Qc.to_alcotest prop_value_batch_lockstep;
    Qc.to_alcotest prop_compact_pack_signature;
    Alcotest.test_case "value soak, k crosses bitset word" `Slow
      test_value_soak_wide_k;
    Alcotest.test_case "LQD tie keeps largest index" `Quick
      test_lqd_tie_largest_index;
    Alcotest.test_case "LWD tie keeps largest index" `Quick
      test_lwd_tie_largest_index;
    Alcotest.test_case "MRD equal-ratio ties" `Quick
      test_mrd_tie_smaller_min_then_largest_index;
    Alcotest.test_case "min_value_port pinned tie" `Quick
      test_min_value_port_pinned_tie;
    Alcotest.test_case "Work_queue raising hook" `Quick
      test_work_queue_raising_hook;
    Alcotest.test_case "Proc_switch raising hook (linked)" `Quick
      (test_proc_switch_raising_hook `Linked);
    Alcotest.test_case "Proc_switch raising hook (flat)" `Quick
      (test_proc_switch_raising_hook `Flat);
    Alcotest.test_case "Value_switch raising hook (linked)" `Quick
      (test_value_switch_raising_hook `Linked);
    Alcotest.test_case "Value_switch raising hook (flat)" `Quick
      (test_value_switch_raising_hook `Flat);
    Alcotest.test_case "Value_queue intra-bucket order" `Quick
      test_value_queue_intra_bucket_order;
  ]
