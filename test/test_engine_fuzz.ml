(* Engine robustness: drive the engines with a "chaos policy" that makes
   arbitrary LEGAL decisions (seeded), and check that every invariant the
   simulator relies on — switch consistency, metrics conservation, port
   accounting — survives arbitrary decision sequences, not just the
   decision patterns real policies produce. *)

open Smbm_prelude
open Smbm_core
open Smbm_traffic
open Smbm_sim

let chaos_proc ~seed =
  let rng = Rng.create ~seed in
  Proc_policy.make ~name:"chaos" ~push_out:true (fun sw ~dest ->
      if not (Proc_switch.is_full sw) then
        (* Sometimes drop even with space: legal for any policy. *)
        if Rng.bernoulli rng ~p:0.8 then Decision.Accept else Decision.Drop
      else begin
        let nonempty =
          List.filter
            (fun j -> Proc_switch.queue_length sw j > 0)
            (List.init (Proc_switch.n sw) Fun.id)
        in
        match nonempty with
        | [] -> Decision.Drop
        | _ ->
          if Rng.bernoulli rng ~p:0.5 then
            let victim = List.nth nonempty (Rng.int rng (List.length nonempty)) in
            if victim = dest && Rng.bernoulli rng ~p:0.5 then Decision.Drop
            else Decision.Push_out { victim }
          else Decision.Drop
      end)

let chaos_value ~seed =
  let rng = Rng.create ~seed in
  Value_policy.make ~name:"chaos" ~push_out:true (fun sw ~dest:_ ~value:_ ->
      if not (Value_switch.is_full sw) then
        if Rng.bernoulli rng ~p:0.8 then Decision.Accept else Decision.Drop
      else begin
        let nonempty =
          List.filter
            (fun j -> Value_switch.queue_length sw j > 0)
            (List.init (Value_switch.n sw) Fun.id)
        in
        match nonempty with
        | [] -> Decision.Drop
        | _ ->
          if Rng.bernoulli rng ~p:0.5 then
            Decision.Push_out
              { victim = List.nth nonempty (Rng.int rng (List.length nonempty)) }
          else Decision.Drop
      end)

let prop_proc_engine_fuzz =
  QCheck2.Test.make ~name:"proc engine survives chaos policies" ~count:60
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* k = int_range 1 4 in
      let* buffer = int_range 1 6 in
      let* speedup = int_range 1 3 in
      let* flush = int_range 0 7 in
      pure (seed, k, buffer, speedup, flush))
    (fun (seed, k, buffer, speedup, flush) ->
      let config = Proc_config.contiguous ~k ~buffer ~speedup () in
      let inst = Proc_engine.instance config (chaos_proc ~seed) in
      let rng = Rng.create ~seed:(seed + 1) in
      let workload =
        Workload.of_fun (fun _ ->
            List.init (Rng.int rng 5) (fun _ ->
                Arrival.make ~dest:(Rng.int rng k) ()))
      in
      Experiment.run
        ~params:
          {
            Experiment.slots = 300;
            flush_every = (if flush = 0 then None else Some flush);
            check_every = Some 1;
          }
        ~workload [ inst ];
      (* check_every already raised on any inconsistency; confirm the
         aggregates at the end too. *)
      Metrics.check_conservation inst.Instance.metrics;
      (match inst.Instance.ports with
      | Some ports ->
        Port_stats.total ports = (Metrics.transmitted inst.Instance.metrics)
      | None -> false))

let prop_value_engine_fuzz =
  QCheck2.Test.make ~name:"value engine survives chaos policies" ~count:60
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* ports = int_range 1 4 in
      let* k = int_range 1 6 in
      let* buffer = int_range 1 6 in
      let* speedup = int_range 1 3 in
      pure (seed, ports, k, buffer, speedup))
    (fun (seed, ports, k, buffer, speedup) ->
      let config = Value_config.make ~ports ~max_value:k ~buffer ~speedup () in
      let inst = Value_engine.instance config (chaos_value ~seed) in
      let rng = Rng.create ~seed:(seed + 1) in
      let workload =
        Workload.of_fun (fun _ ->
            List.init (Rng.int rng 5) (fun _ ->
                Arrival.make ~dest:(Rng.int rng ports)
                  ~value:(1 + Rng.int rng k) ()))
      in
      Experiment.run
        ~params:
          { Experiment.slots = 300; flush_every = Some 50; check_every = Some 1 }
        ~workload [ inst ];
      Metrics.check_conservation inst.Instance.metrics;
      (* Value accounting: per-port sums equal the global counter. *)
      match inst.Instance.ports with
      | Some p ->
        let total =
          List.fold_left
            (fun acc i -> acc + Port_stats.transmitted_value p i)
            0
            (List.init (Port_stats.n p) Fun.id)
        in
        total = (Metrics.transmitted_value inst.Instance.metrics)
      | None -> false)

let suite =
  [
    Qc.to_alcotest prop_proc_engine_fuzz;
    Qc.to_alcotest prop_value_engine_fuzz;
  ]
