open Smbm_prelude

let test_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "quantile" 0.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "max" 0.0 (Histogram.max_seen h)

let test_validation () =
  let h = Histogram.create () in
  (match Histogram.add h (-1.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative sample accepted");
  (match Histogram.quantile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q > 1 accepted");
  match Histogram.create ~max_value:0.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_value <= 1 accepted"

let test_mean_exact () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 10.0 ];
  Alcotest.(check (float 1e-9)) "mean is exact" 4.0 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max" 10.0 (Histogram.max_seen h);
  Alcotest.(check int) "count" 4 (Histogram.count h)

let test_quantiles_bounded_error () =
  (* With 10 buckets per decade, any quantile must fall within ~30% of the
     true value for a known uniform sample. *)
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  List.iter
    (fun q ->
      let est = Histogram.quantile h q in
      let true_v = q *. 1000.0 in
      if abs_float (est -. true_v) /. true_v > 0.3 then
        Alcotest.failf "q=%.2f: estimate %.1f too far from %.1f" q est true_v)
    [ 0.1; 0.25; 0.5; 0.9; 0.99 ]

let test_quantile_monotone () =
  let h = Histogram.create () in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 500 do
    Histogram.add h (Rng.float rng *. 1000.0)
  done;
  let prev = ref 0.0 in
  List.iter
    (fun q ->
      let v = Histogram.quantile h q in
      if v < !prev -. 1e-9 then Alcotest.fail "quantiles not monotone";
      prev := v)
    [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.9; 0.99; 1.0 ]

let test_single_sample () =
  (* Every quantile of a one-sample distribution IS that sample; the
     log-bucket interpolation must not report a value below it. *)
  let h = Histogram.create () in
  Histogram.add h 17.0;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f of single sample" q)
        17.0 (Histogram.quantile h q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  (* And a clamped single sample still reports the exact maximum. *)
  let c = Histogram.create ~max_value:10.0 () in
  Histogram.add c 1e6;
  Alcotest.(check (float 1e-9)) "clamped single sample" 1e6
    (Histogram.quantile c 0.99)

let test_quantile_capped_by_max () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 5.0; 5.0; 5.0 ];
  Alcotest.(check bool) "p99 <= max" true
    (Histogram.quantile h 0.99 <= 5.0 +. 1e-9)

let test_clamping () =
  let h = Histogram.create ~max_value:100.0 () in
  Histogram.add h 1e9;
  Alcotest.(check int) "clamped sample counted" 1 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "max tracked exactly" 1e9 (Histogram.max_seen h)

let test_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Histogram.add b) [ 100.0; 200.0 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "count" 4 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "mean" 75.75 (Histogram.mean m);
  let incompatible = Histogram.create ~buckets_per_decade:5 () in
  match Histogram.merge a incompatible with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "incompatible merge accepted"

let test_clear () =
  let h = Histogram.create () in
  Histogram.add h 7.0;
  Histogram.clear h;
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Histogram.add h 3.0;
  Alcotest.(check (float 1e-9)) "reusable" 3.0 (Histogram.mean h)

let test_bucket_export () =
  (* The exported (index, count) shape is complete (counts sum to the
     histogram's count), sorted, and consistent with bucket_bounds: every
     sample falls inside its bucket's edges. *)
  let h = Histogram.create () in
  let samples = [ 0.5; 1.5; 1.7; 42.0; 42.0; 9000.0 ] in
  List.iter (Histogram.add h) samples;
  let bpd = Histogram.buckets_per_decade h in
  let buckets = Histogram.buckets h in
  Alcotest.(check int)
    "counts sum to count"
    (Histogram.count h)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
  Alcotest.(check bool)
    "sorted by index, all counts positive" true
    (fst (List.fold_left
            (fun (ok, prev) (i, c) -> (ok && i > prev && c > 0, i))
            (true, -1) buckets));
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "%g falls in an exported bucket" x)
        true
        (List.exists
           (fun (i, _) ->
             let lo, hi = Histogram.bucket_bounds ~buckets_per_decade:bpd i in
             lo <= x && x < hi)
           buckets))
    samples;
  (* Reconstruction: quantiles over the exported buckets agree with the
     histogram's own (both interpolate the same shape; the external path
     lacks the max_seen clamp, hence the loose bound). *)
  List.iter
    (fun q ->
      let direct = Histogram.quantile h q in
      let rebuilt =
        Histogram.quantile_of_buckets ~buckets_per_decade:bpd buckets q
      in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f reconstructed within a bucket" q)
        true
        (abs_float (rebuilt -. direct) <= (0.35 *. direct) +. 1.0))
    [ 0.25; 0.5; 0.9; 0.99 ];
  Alcotest.(check (float 1e-9))
    "empty bucket list" 0.0
    (Histogram.quantile_of_buckets ~buckets_per_decade:10 [] 0.5);
  match Histogram.bucket_bounds ~buckets_per_decade:10 (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative index accepted"

let prop_median_within_bucket_error =
  QCheck2.Test.make ~name:"histogram median tracks exact median" ~count:100
    QCheck2.Gen.(list_size (int_range 10 200) (float_range 0.0 10000.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let sorted = List.sort compare xs in
      (* Nearest-rank (lower) median, matching the estimator's convention:
         the upper median can sit across an arbitrarily large data gap. *)
      let exact = List.nth sorted ((List.length xs - 1) / 2) in
      let est = Histogram.quantile h 0.5 in
      (* Log-bucketed: allow ~35% relative error plus an absolute grace for
         tiny values. *)
      abs_float (est -. exact) <= (0.35 *. exact) +. 1.5)

(* The two quantile paths — the histogram's own scan (clamped by
   max_seen) and the external bucket-list interpolation — walk the same
   shape to the same target bucket.  Their exact relation: the bucket
   path never reads lower, and wherever the target bucket lies wholly
   below max_seen (so the clamp is inert), they agree to the last bit of
   the shared arithmetic; in the max bucket they differ by at most the
   clamp, i.e. the bucket's width. *)
let prop_bucket_quantile_equals_direct =
  QCheck2.Test.make
    ~name:"quantile_of_buckets matches quantile wherever the clamp is inert"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 300) (float_range 0.0 1e6))
        (float_range 0.0 1.0))
    (fun (xs, q) ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let bpd = Histogram.buckets_per_decade h in
      let buckets = Histogram.buckets h in
      let direct = Histogram.quantile h q in
      let rebuilt = Histogram.quantile_of_buckets ~buckets_per_decade:bpd buckets q in
      (* Independent re-derivation of the target bucket. *)
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
      let rank = q *. float_of_int total in
      let target =
        let rec scan seen = function
          | [] -> fst (List.hd (List.rev buckets))
          | (i, c) :: rest ->
            if float_of_int (seen + c) >= rank then i else scan (seen + c) rest
        in
        scan 0 buckets
      in
      let lo, hi = Histogram.bucket_bounds ~buckets_per_decade:bpd target in
      let max_seen = Histogram.max_seen h in
      let eps = 1e-9 *. Float.max 1.0 rebuilt in
      direct <= rebuilt +. eps
      && direct <= max_seen +. eps
      && rebuilt -. direct <= hi -. lo +. eps
      && if hi <= max_seen then abs_float (rebuilt -. direct) <= eps else true)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "exact mean" `Quick test_mean_exact;
    Alcotest.test_case "bounded quantile error" `Quick
      test_quantiles_bounded_error;
    Alcotest.test_case "monotone quantiles" `Quick test_quantile_monotone;
    Alcotest.test_case "single-sample quantiles" `Quick test_single_sample;
    Alcotest.test_case "quantile capped by max" `Quick
      test_quantile_capped_by_max;
    Alcotest.test_case "clamping" `Quick test_clamping;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "bucket export round-trip" `Quick test_bucket_export;
    Qc.to_alcotest prop_median_within_bucket_error;
    Qc.to_alcotest prop_bucket_quantile_equals_direct;
  ]
