(* Golden regression tests: fixed-seed runs pinned to their exact outputs.

   Everything in the simulator is deterministic given a seed, so these
   values are bit-stable; a change here means the semantics of a policy,
   the traffic generator, the engine or the OPT reference moved - which
   must be a deliberate, documented decision, since it silently re-dates
   every number in EXPERIMENTS.md. *)

open Smbm_sim

let base =
  {
    Sweep.default_base with
    Sweep.slots = 3_000;
    flush_every = Some 500;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 40 };
    seed = 2014;
  }

let check_ratios expected actual =
  List.iter2
    (fun (en, ev) (an, av) ->
      Alcotest.(check string) "policy order" en an;
      Alcotest.(check (float 1e-6)) en ev av)
    expected actual

let test_proc_point () =
  check_ratios
    [
      ("NHST", 1.183004);
      ("NEST", 1.188489);
      ("NHDT", 1.218089);
      ("LQD", 1.184512);
      ("BPD", 1.509748);
      ("BPD1", 1.251515);
      ("LWD", 1.179626);
    ]
    (Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.K ~x:8 ())

let test_value_port_point () =
  check_ratios
    [
      ("Greedy", 1.733878);
      ("NEST", 1.653273);
      ("LQD", 1.653273);
      ("MVD", 6.749858);
      ("MVD1", 2.564822);
      ("MRD", 1.668851);
      ("NHST", 1.653365);
    ]
    (Sweep.run_point ~base ~model:Sweep.Value_port ~axis:Sweep.K ~x:8 ())

let test_lwd_construction_counts () =
  (* The Theorem 6 construction is fully deterministic: exact packet
     counts, not just ratios. *)
  let m = Smbm_lowerbounds.Lb_lwd.measure ~buffer:240 ~episodes:2 () in
  Alcotest.(check int) "LWD transmissions" 720
    m.Smbm_lowerbounds.Runner.alg_throughput;
  Alcotest.(check int) "scripted OPT transmissions" 954
    m.Smbm_lowerbounds.Runner.opt_throughput

let suite =
  [
    Alcotest.test_case "proc model point (seed 2014)" `Quick test_proc_point;
    Alcotest.test_case "value-port point (seed 2014)" `Quick
      test_value_port_point;
    Alcotest.test_case "Thm 6 construction exact counts" `Quick
      test_lwd_construction_counts;
  ]
