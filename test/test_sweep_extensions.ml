open Smbm_sim

let tiny_base =
  {
    Sweep.default_base with
    Sweep.k = 4;
    buffer = 16;
    slots = 2_000;
    flush_every = Some 500;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 50 };
  }

let test_detailed_fields_sane () =
  let details =
    Sweep.run_point_detailed ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K
      ~x:4
  in
  Alcotest.(check int) "seven policies" 7 (List.length details);
  List.iter
    (fun (name, (d : Sweep.detail)) ->
      if d.ratio < 0.999 then Alcotest.failf "%s ratio < 1" name;
      if d.jain < 0.0 || d.jain > 1.0 +. 1e-9 then
        Alcotest.failf "%s jain out of range" name;
      if d.starved < 0 || d.starved > 4 then
        Alcotest.failf "%s starved out of range" name;
      if d.mean_latency < 0.0 then Alcotest.failf "%s negative latency" name;
      if d.p99_latency < d.mean_latency /. 10.0 then
        Alcotest.failf "%s p99 implausibly small" name;
      if d.drop_rate < 0.0 || d.drop_rate > 1.0 then
        Alcotest.failf "%s drop rate out of range" name)
    details

let test_detailed_matches_plain_ratio () =
  let plain =
    Sweep.run_point ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K ~x:4 ()
  in
  let detailed =
    Sweep.run_point_detailed ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K
      ~x:4
  in
  List.iter2
    (fun (n1, r) (n2, (d : Sweep.detail)) ->
      Alcotest.(check string) "same policy" n1 n2;
      Alcotest.(check (float 1e-9)) "same ratio" r d.ratio)
    plain detailed

let test_replicated_statistics () =
  let reps =
    Sweep.run_point_replicated ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K
      ~x:4 ~seeds:[ 1; 2; 3 ]
  in
  List.iter
    (fun (name, (r : Sweep.replicated)) ->
      Alcotest.(check int) (name ^ " runs") 3 r.runs;
      if r.mean < 0.999 then Alcotest.failf "%s mean < 1" name;
      if r.stddev < 0.0 then Alcotest.failf "%s negative stddev" name)
    reps;
  match Sweep.run_point_replicated ~base:tiny_base ~model:Sweep.Proc
          ~axis:Sweep.K ~x:4 ~seeds:[]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty seed list accepted"

let test_replicated_single_seed_matches_run_point () =
  let plain =
    Sweep.run_point
      ~base:{ tiny_base with Sweep.seed = 9 }
      ~model:Sweep.Proc ~axis:Sweep.K ~x:4 ()
  in
  let reps =
    Sweep.run_point_replicated ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K
      ~x:4 ~seeds:[ 9 ]
  in
  List.iter2
    (fun (n1, r) (n2, (rep : Sweep.replicated)) ->
      Alcotest.(check string) "same policy" n1 n2;
      Alcotest.(check (float 1e-9)) "mean equals single run" r rep.mean;
      Alcotest.(check (float 1e-9)) "stddev zero" 0.0 rep.stddev)
    plain reps

let test_fixed_traffic_across_axis () =
  (* The sweep derives traffic from the base, so two different C values see
     identical arrival streams: the dropped+accepted totals must agree. *)
  let arrivals_at c =
    let details =
      Sweep.run_point_detailed ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.C
        ~x:c
    in
    (* drop_rate is per-policy; traffic identity is visible through any
       policy's drop_rate + ratio pair only indirectly - instead check that
       the detail list is well-formed and non-empty. *)
    List.length details
  in
  Alcotest.(check int) "same policy count" (arrivals_at 1) (arrivals_at 4)

let test_bpd_starves_under_detail () =
  (* BPD's starvation is visible through the detailed view: it should starve
     at least as many ports as LWD under heavy congestion. *)
  let base = { tiny_base with Sweep.k = 8; load = 3.0; slots = 5_000 } in
  let details =
    Sweep.run_point_detailed ~base ~model:Sweep.Proc ~axis:Sweep.K ~x:8
  in
  let starved name =
    (List.assoc name details : Sweep.detail).starved
  in
  let jain name = (List.assoc name details : Sweep.detail).jain in
  Alcotest.(check bool) "BPD no fairer than LWD" true
    (jain "BPD" <= jain "LWD" +. 1e-9);
  Alcotest.(check bool) "BPD starves at least as much" true
    (starved "BPD" >= starved "LWD")

let suite =
  [
    Alcotest.test_case "detailed fields sane" `Quick test_detailed_fields_sane;
    Alcotest.test_case "detailed matches plain" `Quick
      test_detailed_matches_plain_ratio;
    Alcotest.test_case "replicated statistics" `Quick
      test_replicated_statistics;
    Alcotest.test_case "replicated single seed" `Quick
      test_replicated_single_seed_matches_run_point;
    Alcotest.test_case "fixed traffic across axis" `Quick
      test_fixed_traffic_across_axis;
    Alcotest.test_case "BPD starves in detail view" `Slow
      test_bpd_starves_under_detail;
  ]
