(* The zero-allocation arrival pipeline: batched slot loop and compact
   trace cache.

   Three contracts pin the refactor:

   - [Workload.next_into] is the primitive and [next] the shim — both must
     yield the same arrival sequence from the same RNG streams, for any
     workload (source stacks, combinators, fixed schedules), even when the
     two are interleaved on one workload.
   - [Experiment.run ~pipeline:`Batched] and [`List] drive instances to
     bit-identical final states.
   - The sweep trace cache ([Sweep.trace_key] / [materialize_trace] /
     [run_point ?trace]) replays bit-identically, shares exactly the axes
     whose traffic parameters coincide (B and C, not K), and the golden
     panel numbers survive at every job count. *)

open Smbm_core
open Smbm_traffic
open Smbm_sim

let arrival = Alcotest.testable Arrival.pp Arrival.equal

(* --- next_into / next equivalence --- *)

(* Two structurally identical workloads (same seeds), one consumed through
   the list shim and one through the batch primitive, must agree slot by
   slot.  [spec] describes a random workload so we can build it twice. *)
type spec =
  | Proc of { sources : int; load : float; seed : int; k : int }
  | Value_uniform of { sources : int; load : float; seed : int; k : int }
  | Value_port of { sources : int; load : float; seed : int; k : int }
  | Fixed of (int * int) list array  (* (dest, value) per slot *)
  | Merge of spec list
  | Take of int * spec
  | Map_shift of spec  (* dest -> dest (identity on dest, bumps value) *)

let rec build = function
  | Proc { sources; load; seed; k } ->
    let config = Proc_config.contiguous ~k ~buffer:(4 * k) () in
    Scenario.proc_workload
      ~mmpp:{ Scenario.default_mmpp with sources }
      ~config ~load ~seed ()
  | Value_uniform { sources; load; seed; k } ->
    let config = Value_config.make ~ports:k ~max_value:k ~buffer:(4 * k) () in
    Scenario.value_uniform_workload
      ~mmpp:{ Scenario.default_mmpp with sources }
      ~config ~load ~seed ()
  | Value_port { sources; load; seed; k } ->
    let config = Value_config.make ~ports:k ~max_value:k ~buffer:(4 * k) () in
    Scenario.value_port_workload
      ~mmpp:{ Scenario.default_mmpp with sources }
      ~config ~load ~seed ()
  | Fixed slots ->
    Workload.of_slots
      (Array.map
         (fun l ->
           List.map (fun (dest, value) -> Arrival.make ~dest ~value ()) l)
         slots)
  | Merge specs -> Workload.merge (List.map build specs)
  | Take (n, s) -> Workload.take n (build s)
  | Map_shift s ->
    Workload.map
      (fun (a : Arrival.t) -> Arrival.make ~dest:a.dest ~value:(a.value + 1) ())
      (build s)

let spec_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        (let* sources = 1 -- 8
         and* load = float_range 0.2 3.0
         and* seed = 0 -- 1000
         and* k = 2 -- 9 in
         return (Proc { sources; load; seed; k }));
        (let* sources = 1 -- 8
         and* load = float_range 0.2 3.0
         and* seed = 0 -- 1000
         and* k = 2 -- 9 in
         return (Value_uniform { sources; load; seed; k }));
        (let* sources = 1 -- 8
         and* load = float_range 0.2 3.0
         and* seed = 0 -- 1000
         and* k = 2 -- 9 in
         return (Value_port { sources; load; seed; k }));
        (let* slots =
           array_size (1 -- 12)
             (list_size (0 -- 4)
                (let* dest = 0 -- 7 and* value = 1 -- 9 in
                 return (dest, value)))
         in
         return (Fixed slots));
      ]
  in
  let node self = function
    | 0 -> leaf
    | n ->
      oneof
        [
          leaf;
          (let* l = list_size (1 -- 3) (self (n - 1)) in
           return (Merge l));
          (let* k = 1 -- 40 and* s = self (n - 1) in
           return (Take (k, s)));
          map (fun s -> Map_shift s) (self (n - 1));
        ]
  in
  sized (fix node)

let read_batch b =
  List.init (Arrival_batch.length b) (fun i ->
      Arrival.make ~dest:(Arrival_batch.dest b i) ~value:(Arrival_batch.value b i)
        ())

let qc_next_into_equals_next =
  QCheck.Test.make ~count:100 ~name:"next_into = next (any workload)"
    (QCheck.make spec_gen)
    (fun spec ->
      let via_list = build spec and via_batch = build spec in
      let batch = Arrival_batch.create () in
      let ok = ref true in
      for _ = 1 to 50 do
        let expect = Workload.next via_list in
        Workload.next_into via_batch batch;
        if not (List.equal Arrival.equal expect (read_batch batch)) then
          ok := false
      done;
      !ok && Workload.slot via_list = Workload.slot via_batch)

let qc_interleaving_is_transparent =
  (* next and next_into on the SAME workload consume the same streams: a
     consumer may mix the two freely without perturbing the sequence. *)
  QCheck.Test.make ~count:60 ~name:"next / next_into interleave freely"
    QCheck.(pair (make spec_gen) (QCheck.small_int))
    (fun (spec, salt) ->
      let reference = build spec and mixed = build spec in
      let batch = Arrival_batch.create () in
      let ok = ref true in
      for i = 1 to 40 do
        let expect = Workload.next reference in
        let got =
          if (i + salt) mod 2 = 0 then Workload.next mixed
          else begin
            Workload.next_into mixed batch;
            read_batch batch
          end
        in
        if not (List.equal Arrival.equal expect got) then ok := false
      done;
      !ok)

(* --- Experiment `List / `Batched bit-identity --- *)

let small_base =
  {
    Sweep.default_base with
    slots = 1_500;
    flush_every = Some 300;
    mmpp = { Scenario.default_mmpp with sources = 20 };
    seed = 11;
  }

let fingerprint (i : Instance.t) =
  let m = i.Instance.metrics in
  ( i.Instance.name,
    ( Metrics.arrivals m,
      Metrics.accepted m,
      Metrics.dropped m,
      Metrics.pushed_out m ),
    (Metrics.transmitted m, Metrics.transmitted_value m, Metrics.flushed m),
    Smbm_prelude.Running_stats.mean (Metrics.latency_stats m) )

let test_pipelines_bit_identical () =
  List.iter
    (fun model ->
      let params =
        {
          Experiment.slots = small_base.Sweep.slots;
          flush_every = small_base.Sweep.flush_every;
          check_every = Some 500;
        }
      in
      let run pipeline =
        let workload, instances = Sweep.setup model small_base in
        Experiment.run ~params ~pipeline ~workload instances;
        List.map fingerprint instances
      in
      let via_list = run `List and via_batched = run `Batched in
      List.iter2
        (fun (n1, a1, t1, l1) (n2, a2, t2, l2) ->
          Alcotest.(check string) "instance order" n1 n2;
          if a1 <> a2 || t1 <> t2 then
            Alcotest.failf "%s: counters diverge between pipelines" n1;
          Alcotest.(check (float 0.0)) (n1 ^ " mean latency") l1 l2)
        via_list via_batched)
    [ Sweep.Proc; Sweep.Value_uniform; Sweep.Value_port ]

(* --- trace cache --- *)

let test_trace_key_sharing () =
  let base = small_base in
  let key axis x = Sweep.trace_key ~base ~model:Sweep.Proc ~axis ~x in
  (* Swept buffer and speedup never reach the generator: one key per axis. *)
  Alcotest.(check string) "B axis shares" (key Sweep.B 16) (key Sweep.B 1024);
  Alcotest.(check string) "C axis shares" (key Sweep.C 1) (key Sweep.C 4);
  (* k relabels the traffic: every K point differs. *)
  Alcotest.(check bool) "K axis differs" false (key Sweep.K 2 = key Sweep.K 8);
  (* The reference (k, speedup) feeds the intensity derivation. *)
  let other = { base with Sweep.seed = base.Sweep.seed + 1 } in
  Alcotest.(check bool) "seed differs" false
    (key Sweep.B 16 = Sweep.trace_key ~base:other ~model:Sweep.Proc ~axis:Sweep.B ~x:16)

let test_trace_signatures_follow_keys () =
  let base = { small_base with Sweep.slots = 300 } in
  let mat axis x =
    Sweep.materialize_trace ~base ~model:Sweep.Value_uniform ~axis ~x
  in
  let sig_of t = Trace.Compact.signature t in
  (* Same key -> byte-identical traffic. *)
  Alcotest.(check string) "B-axis traces coincide"
    (sig_of (mat Sweep.B 16))
    (sig_of (mat Sweep.B 512));
  Alcotest.(check bool) "K-axis traces differ" false
    (sig_of (mat Sweep.K 2) = sig_of (mat Sweep.K 8))

let test_cached_replay_matches_live () =
  List.iter
    (fun (model, axis, x) ->
      let base = { small_base with Sweep.slots = 800 } in
      let live = Sweep.run_point ~base ~model ~axis ~x () in
      let trace = Sweep.materialize_trace ~base ~model ~axis ~x in
      let cached = Sweep.run_point ~trace ~base ~model ~axis ~x () in
      List.iter2
        (fun (n1, r1) (n2, r2) ->
          Alcotest.(check string) "series" n1 n2;
          Alcotest.(check (float 0.0)) ("ratio " ^ n1) r1 r2)
        live cached)
    [
      (Sweep.Proc, Sweep.B, 32);
      (Sweep.Value_uniform, Sweep.C, 2);
      (Sweep.Value_port, Sweep.K, 4);
    ]

let test_short_trace_rejected () =
  let base = { small_base with Sweep.slots = 200 } in
  let trace =
    Sweep.materialize_trace ~base ~model:Sweep.Proc ~axis:Sweep.B ~x:16
  in
  let grown = { base with Sweep.slots = 400 } in
  match
    Sweep.run_point ~trace ~base:grown ~model:Sweep.Proc ~axis:Sweep.B ~x:16 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "trace shorter than the run accepted"

let test_worth_caching_budget () =
  let base = small_base in
  let worth ?max_arrivals () =
    Sweep.trace_worth_caching ?max_arrivals ~base ~model:Sweep.Proc
      ~axis:Sweep.B ~x:16 ()
  in
  Alcotest.(check bool) "default budget admits a small point" true (worth ());
  Alcotest.(check bool) "zero budget disables" false
    (worth ~max_arrivals:0 ());
  Alcotest.(check bool) "tiny budget rejects" false (worth ~max_arrivals:10 ())

let test_compact_roundtrip () =
  let w = build (Proc { sources = 5; load = 1.5; seed = 3; k = 4 }) in
  let compact = Trace.Compact.of_workload w ~slots:120 in
  (* Replay equals a second live generation, slot by slot. *)
  let live = build (Proc { sources = 5; load = 1.5; seed = 3; k = 4 }) in
  let replayed = Trace.Compact.replay compact in
  for _ = 1 to 120 do
    Alcotest.(check (list arrival)) "replay slot" (Workload.next live)
      (Workload.next replayed)
  done;
  Alcotest.(check (list arrival)) "empty beyond the end" []
    (Workload.next replayed);
  (* Compact <-> legacy trace conversion preserves content. *)
  Alcotest.(check bool) "of_trace/to_trace roundtrip" true
    (Trace.Compact.equal compact
       (Trace.Compact.of_trace (Trace.Compact.to_trace compact)))

(* --- golden panel, every job count --- *)

(* Pinned from the pre-refactor per-slot list pipeline (slots = 2000,
   flushouts every 400, 25 MMPP sources, seed 7, panels 1 and 4 at
   xs = 2,4,8): the batched loop, the trace cache and the parallel runner
   must all reproduce these digits exactly.  Panel 1 sweeps k (distinct
   trace keys), panel 4's B sweep shares one trace across its points. *)
let golden_base =
  {
    Sweep.default_base with
    slots = 2_000;
    flush_every = Some 400;
    mmpp = { Scenario.default_mmpp with sources = 25 };
    seed = 7;
  }

let golden =
  [
    ( 1,
      [
        ( 2,
          [
            ("NHST", 1.265818547); ("NEST", 1.265818547); ("NHDT", 1.265818547);
            ("LQD", 1.265818547); ("BPD", 1.611679454); ("BPD1", 1.327598315);
            ("LWD", 1.265818547);
          ] );
        ( 4,
          [
            ("NHST", 1.151406650); ("NEST", 1.156731757); ("NHDT", 1.178534031);
            ("LQD", 1.156434626); ("BPD", 1.362178517); ("BPD1", 1.187236287);
            ("LWD", 1.150817996);
          ] );
        ( 8,
          [
            ("NHST", 1.189066603); ("NEST", 1.193053892); ("NHDT", 1.237823062);
            ("LQD", 1.189918777); ("BPD", 1.471057295); ("BPD1", 1.247120681);
            ("LWD", 1.183979082);
          ] );
      ] );
    ( 4,
      [
        ( 2,
          [
            ("Greedy", 1.319914206); ("NEST", 1.311690441); ("LQD", 1.000000000);
            ("MVD", 1.000000000); ("MVD1", 1.000000000); ("MRD", 1.000000000);
          ] );
        ( 4,
          [
            ("Greedy", 1.579802469); ("NEST", 1.567110806); ("LQD", 1.000469102);
            ("MVD", 1.013913540); ("MVD1", 1.009339012); ("MRD", 1.000469102);
          ] );
        ( 8,
          [
            ("Greedy", 1.687828415); ("NEST", 1.629185842); ("LQD", 1.007521175);
            ("MVD", 1.012940701); ("MVD1", 1.009964016); ("MRD", 1.006772568);
          ] );
      ] );
  ]

let check_golden outcome expected =
  List.iter2
    (fun (p : Sweep.point) (x, series) ->
      Alcotest.(check int) "x" x p.Sweep.x;
      List.iter2
        (fun (name, ratio) (gname, gratio) ->
          Alcotest.(check string) "series" gname name;
          Alcotest.(check (float 5e-10)) (Printf.sprintf "x=%d %s" x name)
            gratio ratio)
        p.Sweep.ratios series)
    outcome.Sweep.points expected

let test_golden_panels_all_job_counts () =
  List.iter
    (fun (number, expected) ->
      List.iter
        (fun jobs ->
          let outcome =
            Smbm_par.Par_sweep.run_panel ~jobs ~base:golden_base ~xs:[ 2; 4; 8 ]
              number
          in
          check_golden outcome expected)
        [ 1; 4 ])
    golden

let suite =
  [
    Qc.to_alcotest qc_next_into_equals_next;
    Qc.to_alcotest qc_interleaving_is_transparent;
    Alcotest.test_case "pipelines bit-identical" `Quick
      test_pipelines_bit_identical;
    Alcotest.test_case "trace keys share B/C, split K" `Quick
      test_trace_key_sharing;
    Alcotest.test_case "trace signatures follow keys" `Quick
      test_trace_signatures_follow_keys;
    Alcotest.test_case "cached replay = live run" `Quick
      test_cached_replay_matches_live;
    Alcotest.test_case "short trace rejected" `Quick test_short_trace_rejected;
    Alcotest.test_case "materialization budget" `Quick
      test_worth_caching_budget;
    Alcotest.test_case "compact trace roundtrip" `Quick test_compact_roundtrip;
    Alcotest.test_case "golden panels at jobs 1 and 4" `Slow
      test_golden_panels_all_job_counts;
  ]
