open Smbm_prelude
open Smbm_core
open Smbm_traffic

let test_pareto_int_range () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 5_000 do
    let x = Rng.pareto_int rng ~alpha:1.3 ~max:50 in
    if x < 1 || x > 50 then Alcotest.fail "pareto_int out of range"
  done;
  (match Rng.pareto_int rng ~alpha:0.0 ~max:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha 0 accepted");
  match Rng.pareto_int rng ~alpha:1.0 ~max:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max 0 accepted"

let test_pareto_int_tail_probability () =
  (* P(X >= x) = x^(-alpha) below the cap. *)
  let rng = Rng.create ~seed:2 in
  let alpha = 1.5 and n = 100_000 in
  let count_ge threshold =
    let c = ref 0 in
    for _ = 1 to n do
      if Rng.pareto_int rng ~alpha ~max:10_000 >= threshold then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  List.iter
    (fun x ->
      let expected = Float.pow (float_of_int x) (-.alpha) in
      let got = count_ge x in
      if abs_float (got -. expected) > 5.0 *. sqrt (expected /. float_of_int n) +. 0.002
      then
        Alcotest.failf "tail at %d: got %.4f expected %.4f" x got expected)
    [ 2; 5; 10 ]

let test_pareto_int_mean_matches_samples () =
  let rng = Rng.create ~seed:3 in
  let alpha = 1.4 and cap = 200 in
  let predicted = Rng.pareto_int_mean ~alpha ~max:cap in
  let n = 200_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.pareto_int rng ~alpha ~max:cap
  done;
  let empirical = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "closed-form mean" true
    (abs_float (empirical -. predicted) /. predicted < 0.05)

let test_batch_mmpp_rate () =
  let rng = Rng.create ~seed:4 in
  let sample r = Rng.pareto_int r ~alpha:1.5 ~max:100 in
  let mean = Rng.pareto_int_mean ~alpha:1.5 ~max:100 in
  let m =
    Mmpp.create_batch ~rng ~p_on_to_off:0.0 ~p_off_to_on:1.0 ~sample ~mean
      ~start_on:true ()
  in
  Alcotest.(check (float 1e-9)) "declared mean rate" mean (Mmpp.mean_rate m);
  let slots = 100_000 in
  let total = ref 0 in
  for _ = 1 to slots do
    total := !total + Mmpp.step m
  done;
  let empirical = float_of_int !total /. float_of_int slots in
  Alcotest.(check bool) "empirical rate" true
    (abs_float (empirical -. mean) /. mean < 0.05)

let test_heavy_tail_workload_rate_and_dispersion () =
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  let mmpp = { Scenario.default_mmpp with sources = 50 } in
  let analyze w = Trace_stats.analyze (Trace.record w ~slots:30_000) in
  let heavy =
    analyze (Scenario.proc_heavy_tail_workload ~mmpp ~config ~load:1.5 ~seed:11 ())
  in
  let poisson =
    analyze (Scenario.proc_workload ~mmpp ~config ~load:1.5 ~seed:11 ())
  in
  let rel_err a b = abs_float (a -. b) /. b in
  Alcotest.(check bool) "same mean rate" true
    (rel_err heavy.Trace_stats.mean_rate poisson.Trace_stats.mean_rate < 0.15);
  Alcotest.(check bool) "much burstier" true
    (heavy.Trace_stats.burstiness > 2.0 *. poisson.Trace_stats.burstiness);
  Alcotest.(check bool) "bigger peaks" true
    (heavy.Trace_stats.peak_rate > poisson.Trace_stats.peak_rate)

let test_heavy_tail_stresses_policies_more () =
  (* At equal mean load, heavy-tailed bursts overflow the buffer far more
     often: the drop rate rises for everyone (the competitive *ratio* need
     not move, since the OPT reference suffers the bursts too). *)
  let open Smbm_sim in
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  let drop_rate workload =
    let lwd = Proc_engine.instance config (P_lwd.make config) in
    Experiment.run
      ~params:
        { Experiment.slots = 20_000; flush_every = Some 2_000; check_every = None }
      ~workload [ lwd ];
    let m = lwd.Instance.metrics in
    float_of_int (Metrics.dropped m) /. float_of_int (max 1 (Metrics.arrivals m))
  in
  let mmpp = { Scenario.default_mmpp with sources = 50 } in
  let heavy =
    drop_rate
      (Scenario.proc_heavy_tail_workload ~mmpp ~config ~load:1.0 ~seed:13 ())
  in
  let poisson =
    drop_rate (Scenario.proc_workload ~mmpp ~config ~load:1.0 ~seed:13 ())
  in
  Alcotest.(check bool) "heavy tail loses more at equal load" true
    (heavy > 1.2 *. poisson)

let suite =
  [
    Alcotest.test_case "pareto_int range" `Quick test_pareto_int_range;
    Alcotest.test_case "pareto_int tail probability" `Quick
      test_pareto_int_tail_probability;
    Alcotest.test_case "pareto_int mean" `Quick
      test_pareto_int_mean_matches_samples;
    Alcotest.test_case "batch MMPP rate" `Quick test_batch_mmpp_rate;
    Alcotest.test_case "heavy-tail workload dispersion" `Quick
      test_heavy_tail_workload_rate_and_dispersion;
    Alcotest.test_case "heavy tail stresses policies" `Slow
      test_heavy_tail_stresses_policies_more;
  ]
