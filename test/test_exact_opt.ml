open Smbm_core
open Smbm_traffic
open Smbm_sim

(* --- hand-checkable cases --- *)

let test_proc_trivial () =
  let config = Proc_config.contiguous ~k:2 ~buffer:2 () in
  (* One work-1 and one work-2 packet: both transmittable. *)
  let trace = [| [ Arrival.make ~dest:0 (); Arrival.make ~dest:1 () ] |] in
  Alcotest.(check int) "both transmitted" 2 (Exact_opt.proc config trace ~drain:4)

let test_proc_forced_choice () =
  (* B = 1, simultaneous work-1 and work-2 arrival: OPT takes the 1 (count
     objective - either gives 1 packet, so the max is 1). *)
  let config = Proc_config.contiguous ~k:2 ~buffer:1 () in
  let trace = [| [ Arrival.make ~dest:1 (); Arrival.make ~dest:0 () ] |] in
  Alcotest.(check int) "one slot, one packet" 1
    (Exact_opt.proc config trace ~drain:4)

let test_proc_prefers_cheap_under_pressure () =
  (* B = 1 and a work-1 arrival EVERY slot, plus a work-2 arrival at slot 0:
     taking 1s every slot transmits 3; taking the 2 first transmits 1 + 1. *)
  let config = Proc_config.contiguous ~k:2 ~buffer:1 () in
  let one = Arrival.make ~dest:0 () and two = Arrival.make ~dest:1 () in
  let trace = [| [ two; one ]; [ one ]; [ one ] |] in
  Alcotest.(check int) "cheap stream wins" 3 (Exact_opt.proc config trace ~drain:3)

let test_proc_no_arrivals () =
  let config = Proc_config.contiguous ~k:2 ~buffer:2 () in
  Alcotest.(check int) "empty trace" 0 (Exact_opt.proc config [||] ~drain:5)

let test_value_trivial () =
  let config = Value_config.make ~ports:2 ~max_value:5 ~buffer:2 () in
  let trace =
    [| [ Arrival.make ~dest:0 ~value:5 (); Arrival.make ~dest:1 ~value:2 () ] |]
  in
  Alcotest.(check int) "total value" 7 (Exact_opt.value config trace ~drain:3)

let test_value_forced_choice () =
  (* B = 1, values 1 and 5 arrive together at the same port: keep the 5. *)
  let config = Value_config.make ~ports:1 ~max_value:5 ~buffer:1 () in
  let trace =
    [| [ Arrival.make ~dest:0 ~value:1 (); Arrival.make ~dest:0 ~value:5 () ] |]
  in
  Alcotest.(check int) "keeps the valuable one" 5
    (Exact_opt.value config trace ~drain:2)

let test_value_port_parallelism () =
  (* Four value-1 packets to one port take 4 slots; spread over two ports
     they take 2.  OPT with 3 slots and drain 0 must exploit both ports. *)
  let config = Value_config.make ~ports:2 ~max_value:1 ~buffer:4 () in
  let a p = Arrival.make ~dest:p ~value:1 () in
  let trace = [| [ a 0; a 0; a 1; a 1 ] |] in
  Alcotest.(check int) "two ports drain in two slots" 4
    (Exact_opt.value config trace ~drain:1)

(* --- property tests: ground-truth ordering --- *)

let tiny_proc_gen =
  QCheck2.Gen.(
    let* k = int_range 1 3 in
    let* buffer = int_range 1 4 in
    let* slots = int_range 1 5 in
    let* trace =
      list_size (pure slots) (list_size (int_range 0 3) (int_range 0 (k - 1)))
    in
    pure (k, buffer, trace))

let proc_trace_of dests =
  Array.of_list (List.map (List.map (fun d -> Arrival.make ~dest:d ())) dests)

let run_proc_policy config trace ~drain policy =
  let inst = Proc_engine.instance config policy in
  Experiment.run
    ~params:
      {
        Experiment.slots = Array.length trace + drain;
        flush_every = None;
        check_every = Some 1;
      }
    ~workload:(Workload.of_fun (fun i -> if i < Array.length trace then trace.(i) else []))
    [ inst ];
  (Metrics.transmitted inst.metrics)

let prop_exact_between_policies_and_reference =
  QCheck2.Test.make
    ~name:"per trace: policy <= exact OPT <= single-PQ reference (proc)"
    ~count:80 tiny_proc_gen (fun (k, buffer, dests) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let trace = proc_trace_of dests in
      let drain = (buffer * k) + k in
      let exact = Exact_opt.proc config trace ~drain in
      let reference =
        let opt = Opt_ref.proc_instance config in
        Experiment.run
          ~params:
            {
              Experiment.slots = Array.length trace + drain;
              flush_every = None;
              check_every = None;
            }
          ~workload:(Workload.of_fun (fun i -> if i < Array.length trace then trace.(i) else []))
          [ opt ];
        (Metrics.transmitted opt.Instance.metrics)
      in
      exact <= reference
      && List.for_all
           (fun policy -> run_proc_policy config trace ~drain policy <= exact)
           (Policies.proc config))

let prop_lwd_two_competitive =
  QCheck2.Test.make
    ~name:"Theorem 7 on the ground truth: exact OPT <= 2 x LWD" ~count:120
    tiny_proc_gen (fun (k, buffer, dests) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let trace = proc_trace_of dests in
      let drain = (buffer * k) + k in
      let exact = Exact_opt.proc config trace ~drain in
      let lwd = run_proc_policy config trace ~drain (P_lwd.make config) in
      exact <= 2 * lwd)

let prop_lqd_two_competitive_uniform_work =
  QCheck2.Test.make
    ~name:"Aiello et al.: exact OPT <= 2 x LQD under uniform work" ~count:80
    QCheck2.Gen.(
      let* n = int_range 1 3 in
      let* work = int_range 1 2 in
      let* buffer = int_range 1 4 in
      let* trace =
        list_size (int_range 1 5)
          (list_size (int_range 0 3) (int_range 0 (n - 1)))
      in
      pure (n, work, buffer, trace))
    (fun (n, work, buffer, dests) ->
      let config = Proc_config.uniform ~n ~work ~buffer () in
      let trace = proc_trace_of dests in
      let drain = (buffer * work) + work in
      let exact = Exact_opt.proc config trace ~drain in
      let lqd = run_proc_policy config trace ~drain (P_lqd.make config) in
      exact <= 2 * lqd)

let tiny_value_gen =
  QCheck2.Gen.(
    let* ports = int_range 1 3 in
    let* k = int_range 1 4 in
    let* buffer = int_range 1 4 in
    let* trace =
      list_size (int_range 1 4)
        (list_size (int_range 0 3)
           (pair (int_range 0 (ports - 1)) (int_range 1 k)))
    in
    pure (ports, k, buffer, trace))

let value_trace_of pairs =
  Array.of_list
    (List.map
       (List.map (fun (d, v) -> Arrival.make ~dest:d ~value:v ()))
       pairs)

let prop_exact_value_ordering =
  QCheck2.Test.make
    ~name:"per trace: policy <= exact OPT <= single-PQ reference (value)"
    ~count:80 tiny_value_gen (fun (ports, k, buffer, pairs) ->
      let config = Value_config.make ~ports ~max_value:k ~buffer () in
      let trace = value_trace_of pairs in
      let drain = buffer + 1 in
      let slots = Array.length trace + drain in
      let exact = Exact_opt.value config trace ~drain in
      let run_value inst =
        Experiment.run
          ~params:{ Experiment.slots = slots; flush_every = None; check_every = Some 1 }
          ~workload:
            (Workload.of_fun (fun i -> if i < Array.length trace then trace.(i) else []))
          [ inst ];
        (Metrics.transmitted_value inst.Instance.metrics)
      in
      let reference = run_value (Opt_ref.value_instance config) in
      exact <= reference
      && List.for_all
           (fun policy ->
             run_value (Value_engine.instance config policy) <= exact)
           (Policies.value_uniform config))

let suite =
  [
    Alcotest.test_case "proc trivial" `Quick test_proc_trivial;
    Alcotest.test_case "proc forced choice" `Quick test_proc_forced_choice;
    Alcotest.test_case "proc prefers cheap stream" `Quick
      test_proc_prefers_cheap_under_pressure;
    Alcotest.test_case "proc empty trace" `Quick test_proc_no_arrivals;
    Alcotest.test_case "value trivial" `Quick test_value_trivial;
    Alcotest.test_case "value forced choice" `Quick test_value_forced_choice;
    Alcotest.test_case "value port parallelism" `Quick
      test_value_port_parallelism;
    Qc.to_alcotest prop_exact_between_policies_and_reference;
    Qc.to_alcotest prop_lwd_two_competitive;
    Qc.to_alcotest prop_lqd_two_competitive_uniform_work;
    Qc.to_alcotest prop_exact_value_ordering;
  ]
