(* The always-on flight recorder: struct-of-arrays ring semantics (wrap,
   truncation metadata, interning, clear), the engine seam's zero observer
   effect — metrics bit-identical with the ring on, and the ring's boxed
   dump identical to the boxed Recorder's — and the load-bearing cost
   property: the record fast path allocates nothing. *)

open Smbm_obs
open Smbm_sim

(* --- ring semantics --- *)

let test_ring_wrap_and_dump () =
  let f = Flight.create ~scope:"x=8" ~cap:3 () in
  Alcotest.(check int) "cap rounds to pow2" 4 (Flight.capacity f);
  let src = Flight.intern f "w" in
  for slot = 0 to 9 do
    Flight.arrival f ~slot ~src ~dest:slot
  done;
  Alcotest.(check int) "length" 4 (Flight.length f);
  Alcotest.(check int) "total" 10 (Flight.total f);
  Alcotest.(check int) "dropped" 6 (Flight.dropped f);
  Alcotest.(check (list int)) "survivors oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Event.t) -> e.Event.slot) (Flight.events f));
  (match Flight.dump f with
  | meta :: rest ->
    Alcotest.(check bool) "truncated meta" true
      (meta.Event.kind = Event.Truncated { evicted = 6 });
    Alcotest.(check int) "meta slot = oldest survivor" 6 meta.Event.slot;
    Alcotest.(check string) "meta src = scope" "x=8" meta.Event.src;
    Alcotest.(check bool) "dump tail = events" true (rest = Flight.events f)
  | [] -> Alcotest.fail "empty dump");
  Flight.clear f;
  Alcotest.(check int) "cleared length" 0 (Flight.length f);
  Alcotest.(check int) "cleared total" 0 (Flight.total f);
  (* No marker before the post-clear ring wraps again. *)
  Flight.arrival f ~slot:11 ~src ~dest:0;
  (match Flight.dump f with
  | [ e ] -> Alcotest.(check int) "post-clear dump" 11 e.Event.slot
  | _ -> Alcotest.fail "expected one event after clear");
  (* Interned ids survive the clear. *)
  Alcotest.(check int) "id stable across clear" src (Flight.intern f "w")

let test_all_kinds_box_round_trip () =
  let f = Flight.create ~cap:16 () in
  let src = Flight.intern f "eng" in
  Flight.arrival f ~slot:1 ~src ~dest:3;
  Flight.accept f ~slot:1 ~src ~dest:3;
  Flight.push_out f ~slot:2 ~src ~victim:1 ~dest:2 ~lost:4;
  Flight.drop f ~slot:2 ~src ~dest:0 ~value:6;
  Flight.transmit f ~slot:3 ~src ~dest:4 ~value:9 ~latency:17;
  Flight.transmit_bulk f ~slot:3 ~src ~dest:(-1) ~count:3 ~value:12;
  Flight.flush f ~slot:4 ~src ~count:7;
  Flight.slot_end f ~slot:4 ~src ~occupancy:42;
  Flight.reconfig f ~slot:5 ~src ~what:"policy" ~target:"LQD";
  Flight.health f ~slot:6 ~src ~rule:"ring" ~tripped:true ~reason:"over";
  let expect =
    List.map
      (fun (slot, kind) -> Event.make ~src:"eng" ~slot kind)
      [
        (1, Event.Arrival { dest = 3 });
        (1, Event.Accept { dest = 3 });
        (2, Event.Push_out { victim = 1; dest = 2; lost = 4 });
        (2, Event.Drop { dest = 0; value = 6 });
        (3, Event.Transmit { dest = 4; value = 9; latency = 17 });
        (3, Event.Transmit_bulk { dest = -1; count = 3; value = 12 });
        (4, Event.Flush { count = 7 });
        (4, Event.Slot_end { occupancy = 42 });
        (5, Event.Reconfig { what = "policy"; target = "LQD" });
        (6, Event.Health { rule = "ring"; tripped = true; reason = "over" });
      ]
  in
  Alcotest.(check bool) "boxed events" true (Flight.events f = expect);
  Alcotest.(check int) "no eviction" 0 (Flight.dropped f)

let test_intern_scope_and_ids () =
  let f = Flight.create ~scope:"x=8" ~cap:4 () in
  let a = Flight.intern f "LWD" in
  Alcotest.(check string) "scope-qualified" "x=8/LWD" (Flight.name_of f a);
  Alcotest.(check int) "idempotent" a (Flight.intern f "LWD");
  let b = Flight.intern f "LQD" in
  Alcotest.(check bool) "dense distinct ids" true (b <> a);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Flight.name_of: unknown id 99") (fun () ->
      ignore (Flight.name_of f 99))

(* --- the engine seam: zero observer effect --- *)

let mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 10 }

let run_proc ?recorder ?flight () =
  let config = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let inst =
    Proc_engine.instance ?recorder ?flight config (Smbm_core.P_lwd.make config)
  in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config ~load:2.0 ~seed:11 ()
  in
  Experiment.run
    ~params:{ Experiment.slots = 400; flush_every = Some 100; check_every = None }
    ~workload [ inst ];
  inst

let test_proc_engine_bit_identical_with_flight () =
  let plain = run_proc () in
  let flight = Flight.create ~cap:65536 () in
  let flown = run_proc ~flight () in
  Alcotest.(check (list string)) "metrics bit-identical"
    (Metrics.to_jsonl plain.Instance.metrics)
    (Metrics.to_jsonl flown.Instance.metrics);
  Alcotest.(check bool) "flight saw the run" true (Flight.total flight > 400)

(* The ring and the boxed Recorder sit behind the same engine seam: given
   room for the whole run, they must drain to the very same event list. *)
let test_proc_flight_matches_recorder () =
  let recorder = Recorder.create ~cap:1_000_000 () in
  let flight = Flight.create ~cap:65536 () in
  let _ = run_proc ~recorder ~flight () in
  Alcotest.(check int) "flight unevicted" 0 (Flight.dropped flight);
  Alcotest.(check (list string)) "same events"
    (List.map Event.to_json (Recorder.dump recorder))
    (List.map Event.to_json (Flight.dump flight))

let test_value_flight_matches_recorder () =
  let config = Smbm_core.Value_config.make ~ports:4 ~max_value:8 ~buffer:8 () in
  let run ?recorder ?flight () =
    let inst =
      Value_engine.instance ?recorder ?flight config
        (Smbm_core.V_greedy.make config)
    in
    let workload =
      Smbm_traffic.Scenario.value_uniform_workload ~mmpp ~config ~load:2.0
        ~seed:7 ()
    in
    Experiment.run
      ~params:
        { Experiment.slots = 300; flush_every = Some 100; check_every = None }
      ~workload [ inst ];
    inst
  in
  let plain = run () in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let flight = Flight.create ~cap:65536 () in
  let flown = run ~recorder ~flight () in
  Alcotest.(check (list string)) "metrics bit-identical"
    (Metrics.to_jsonl plain.Instance.metrics)
    (Metrics.to_jsonl flown.Instance.metrics);
  Alcotest.(check int) "flight unevicted" 0 (Flight.dropped flight);
  Alcotest.(check (list string)) "same events"
    (List.map Event.to_json (Recorder.dump recorder))
    (List.map Event.to_json (Flight.dump flight))

(* --- the cost property: recording allocates nothing --- *)

let test_record_is_allocation_free () =
  let f = Flight.create ~cap:1024 () in
  let src = Flight.intern f "eng" in
  let burst () =
    for slot = 1 to 10_000 do
      Flight.arrival f ~slot ~src ~dest:3;
      Flight.accept f ~slot ~src ~dest:3;
      Flight.push_out f ~slot ~src ~victim:1 ~dest:2 ~lost:4;
      Flight.drop f ~slot ~src ~dest:0 ~value:5;
      Flight.transmit f ~slot ~src ~dest:1 ~value:2 ~latency:3;
      Flight.transmit_bulk f ~slot ~src ~dest:(-1) ~count:2 ~value:4;
      Flight.flush f ~slot ~src ~count:7;
      Flight.slot_end f ~slot ~src ~occupancy:9;
      (* The string-carrying kinds too: their payloads are interned after
         the first call, so steady state is int-only as well. *)
      Flight.reconfig f ~slot ~src ~what:"policy" ~target:"LQD";
      Flight.health f ~slot ~src ~rule:"ring" ~tripped:true ~reason:"over"
    done
  in
  burst () (* warm-up: interning done, ring arrays touched *);
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  burst ();
  let dw = Gc.minor_words () -. w0 in
  (* 100k records; the only tolerated words are the measurement's own
     boxed-float results.  Anything per-record would show as >= 200k. *)
  Alcotest.(check bool)
    (Printf.sprintf "minor words for 100k records: %.0f" dw)
    true (dw < 256.0)

let suite =
  [
    Alcotest.test_case "ring wrap and dump" `Quick test_ring_wrap_and_dump;
    Alcotest.test_case "all kinds box round-trip" `Quick
      test_all_kinds_box_round_trip;
    Alcotest.test_case "intern scope and ids" `Quick test_intern_scope_and_ids;
    Alcotest.test_case "proc engine bit-identical with flight" `Quick
      test_proc_engine_bit_identical_with_flight;
    Alcotest.test_case "proc flight matches recorder" `Quick
      test_proc_flight_matches_recorder;
    Alcotest.test_case "value flight matches recorder" `Quick
      test_value_flight_matches_recorder;
    Alcotest.test_case "record is allocation-free" `Quick
      test_record_is_allocation_free;
  ]
