open Smbm_core
open Smbm_traffic
open Smbm_sim

let build ?(every = 2) () =
  let config = Proc_config.uniform ~n:1 ~work:1 ~buffer:4 () in
  let inst = Proc_engine.instance config (P_lwd.make config) in
  Timeseries.attach ~every inst

let test_validation () =
  let config = Proc_config.uniform ~n:1 ~work:1 ~buffer:4 () in
  let inst = Proc_engine.instance config (P_lwd.make config) in
  match Timeseries.attach ~every:0 inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "every = 0 accepted"

let test_sampling_cadence () =
  let inst, ts = build ~every:3 () in
  let w = Workload.of_fun (fun _ -> [ Arrival.make ~dest:0 () ]) in
  Experiment.run
    ~params:{ Experiment.slots = 10; flush_every = None; check_every = None }
    ~workload:w [ inst ];
  Alcotest.(check int) "samples at slots 3, 6, 9" 3 (Timeseries.samples ts)

let test_throughput_series () =
  (* One arrival per slot, work 1: throughput 1 packet/slot at every
     sample. *)
  let inst, ts = build ~every:2 () in
  let w = Workload.of_fun (fun _ -> [ Arrival.make ~dest:0 () ]) in
  Experiment.run
    ~params:{ Experiment.slots = 8; flush_every = None; check_every = None }
    ~workload:w [ inst ];
  let series = Timeseries.throughput ts in
  List.iter
    (fun (_, y) ->
      Alcotest.(check (float 1e-9)) "one packet per slot" 1.0 y)
    series.Smbm_report.Series.points;
  Alcotest.(check int) "four samples" 4
    (List.length series.Smbm_report.Series.points)

let test_drop_rate_and_occupancy () =
  (* Burst of 6 into B = 4 with one served per slot: drops recorded in the
     first window, occupancy decays in later ones. *)
  let inst, ts = build ~every:2 () in
  let w = Workload.of_slots [| List.init 6 (fun _ -> Arrival.make ~dest:0 ()) |] in
  Experiment.run
    ~params:{ Experiment.slots = 6; flush_every = None; check_every = None }
    ~workload:w [ inst ];
  let drops = Timeseries.drop_rate ts in
  (match drops.Smbm_report.Series.points with
  | (_, first) :: rest ->
    Alcotest.(check bool) "drops in first window" true (first > 0.0);
    List.iter
      (fun (_, y) -> Alcotest.(check (float 1e-9)) "no drops later" 0.0 y)
      rest
  | [] -> Alcotest.fail "no samples");
  let occ = Timeseries.occupancy ts in
  let ys = List.map snd occ.Smbm_report.Series.points in
  (match ys with
  | a :: b :: _ -> Alcotest.(check bool) "occupancy decays" true (a > b)
  | _ -> Alcotest.fail "too few samples")

let test_csv_shape () =
  let inst, ts = build ~every:1 () in
  let w = Workload.of_fun (fun _ -> [ Arrival.make ~dest:0 () ]) in
  Experiment.run
    ~params:{ Experiment.slots = 3; flush_every = None; check_every = None }
    ~workload:w [ inst ];
  let csv = Timeseries.to_csv ts in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header" "slot,occupancy,throughput,drop_rate"
    (List.hd lines)

let test_wrapped_instance_transparent () =
  (* The wrapper must not change the instance's behaviour. *)
  let config = Proc_config.uniform ~n:2 ~work:2 ~buffer:4 () in
  let plain = Proc_engine.instance config (P_lwd.make config) in
  let wrapped, _ = Timeseries.attach ~every:5 (Proc_engine.instance config (P_lwd.make config)) in
  let w1 = Workload.of_fun (fun i -> [ Arrival.make ~dest:(i mod 2) () ]) in
  let w2 = Workload.of_fun (fun i -> [ Arrival.make ~dest:(i mod 2) () ]) in
  Experiment.run
    ~params:{ Experiment.slots = 50; flush_every = Some 10; check_every = Some 1 }
    ~workload:w1 [ plain ];
  Experiment.run
    ~params:{ Experiment.slots = 50; flush_every = Some 10; check_every = Some 1 }
    ~workload:w2 [ wrapped ];
  Alcotest.(check int) "identical transmissions"
    (Metrics.transmitted plain.Instance.metrics)
    (Metrics.transmitted wrapped.Instance.metrics)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "sampling cadence" `Quick test_sampling_cadence;
    Alcotest.test_case "throughput series" `Quick test_throughput_series;
    Alcotest.test_case "drop rate and occupancy" `Quick
      test_drop_rate_and_occupancy;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
    Alcotest.test_case "wrapper transparency" `Quick
      test_wrapped_instance_transparent;
  ]
