(* Trace forensics: replay reconstructs metrics bit-identically from a
   trace alone (proc, value, hybrid), diff pins the first divergent
   admission on a seeded pair, and attribution's regret accounting
   conserves the measured throughput gap. *)

open Smbm_obs
open Smbm_sim
open Smbm_forensics

let mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 10 }

(* Run [insts] (each wired to its own recorder) over [workload], write the
   dumps into one interleaved trace file, and load it back. *)
let trace_of_run ~slots ~flush_every ~workload insts_recs =
  Experiment.run
    ~params:{ Experiment.slots; flush_every; check_every = Some 50 }
    ~workload
    (List.map fst insts_recs);
  let path = Filename.temp_file "smbm_forensics" ".jsonl" in
  let sink = Sink.file path in
  List.iter
    (fun (_, r) -> List.iter (Sink.event sink) (Recorder.dump r))
    insts_recs;
  Sink.close sink;
  let trace = Trace_file.load path in
  Sys.remove path;
  match trace with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace load failed: %s" e

let source trace name =
  match Trace_file.find trace name with
  | Ok s -> s
  | Error e -> Alcotest.failf "source %s: %s" name e

(* The round-trip certificate: replay the instance's stream and demand the
   reconstructed metrics serialize to the very same bytes as the live
   run's. *)
let check_round_trip label (inst : Instance.t) trace =
  let r = Replay.replay (source trace inst.Instance.name) in
  (match r.Replay.status with
  | Replay.Verified { slots; checks } ->
    Alcotest.(check bool)
      (label ^ ": verification ran")
      true
      (slots > 0 && checks >= slots)
  | Replay.Unverifiable _ ->
    Alcotest.failf "%s: complete trace reported unverifiable" label);
  Alcotest.(check (list string))
    (label ^ ": metrics bit-identical")
    (Metrics.to_jsonl inst.Instance.metrics)
    (Metrics.to_jsonl r.Replay.metrics)

(* --- round trips, one per switch model --- *)

let test_round_trip_proc () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst = Proc_engine.instance ~recorder cfg (Smbm_core.P_lwd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed:11 ()
  in
  let trace =
    trace_of_run ~slots:400 ~flush_every:(Some 100) ~workload
      [ (inst, recorder) ]
  in
  check_round_trip "proc/LWD" inst trace

let test_round_trip_value () =
  let cfg = Smbm_core.Value_config.make ~ports:4 ~max_value:8 ~buffer:8 () in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst = Value_engine.instance ~recorder cfg (Smbm_core.V_mrd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.value_port_workload ~mmpp ~config:cfg ~load:2.5
      ~seed:7 ()
  in
  let trace =
    trace_of_run ~slots:400 ~flush_every:(Some 100) ~workload
      [ (inst, recorder) ]
  in
  check_round_trip "value/MRD" inst trace

let test_round_trip_hybrid () =
  let cfg =
    Smbm_hybrid.Hybrid_config.contiguous ~k:4 ~max_value:8 ~buffer:16 ()
  in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst =
    Smbm_hybrid.Hybrid_engine.instance ~recorder cfg
      Smbm_hybrid.Hybrid_policy.lwd
  in
  let rng = Smbm_prelude.Rng.create ~seed:5 in
  let slots = 300 in
  let arrivals =
    Array.init slots (fun _ ->
        List.init
          (Smbm_prelude.Rng.poisson rng ~lambda:3.0)
          (fun _ ->
            let dest = Smbm_prelude.Rng.int rng 4 in
            let value = 1 + Smbm_prelude.Rng.int rng 8 in
            Smbm_core.Arrival.make ~dest ~value ()))
  in
  let workload = Smbm_traffic.Workload.of_slots arrivals in
  let trace =
    trace_of_run ~slots ~flush_every:(Some 100) ~workload [ (inst, recorder) ]
  in
  check_round_trip "hybrid/LWD" inst trace

let prop_round_trip_proc_random =
  QCheck2.Test.make
    ~name:"replay reconstructs proc metrics across random runs" ~count:10
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 5 40) (int_range 5 20))
    (fun (seed, load10, buffer) ->
      let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer () in
      let recorder = Recorder.create ~cap:1_000_000 () in
      let inst =
        Proc_engine.instance ~recorder cfg (Smbm_core.P_lqd.make cfg)
      in
      let workload =
        Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg
          ~load:(float_of_int load10 /. 10.0)
          ~seed ()
      in
      let trace =
        trace_of_run ~slots:200 ~flush_every:(Some 50) ~workload
          [ (inst, recorder) ]
      in
      let r = Replay.replay (source trace inst.Instance.name) in
      Metrics.to_jsonl inst.Instance.metrics = Metrics.to_jsonl r.Replay.metrics)

(* --- diff: seeded golden --- *)

(* LWD vs LQD on one seeded workload.  The pinned numbers are this
   workload's ground truth: the first slot where weighted and unweighted
   victim selection part ways. *)
let diff_pair () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let ra = Recorder.create ~cap:1_000_000 () in
  let rb = Recorder.create ~cap:1_000_000 () in
  let a = Proc_engine.instance ~recorder:ra cfg (Smbm_core.P_lwd.make cfg) in
  let b = Proc_engine.instance ~recorder:rb cfg (Smbm_core.P_lqd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed:42 ()
  in
  let trace =
    trace_of_run ~slots:400 ~flush_every:(Some 100) ~workload
      [ (a, ra); (b, rb) ]
  in
  (a, b, source trace "LWD", source trace "LQD")

let test_diff_golden () =
  let _, _, sa, sb = diff_pair () in
  match Diff.diff ~a:sa ~b:sb with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
    Alcotest.(check bool) "policies do diverge" true (d.Diff.diffs > 0);
    (match d.Diff.first with
    | None -> Alcotest.fail "no first divergence reported"
    | Some f ->
      Alcotest.(check int) "first divergence slot" 29 f.Diff.slot;
      Alcotest.(check int) "first divergence arrival index" 2 f.Diff.index;
      Alcotest.(check int) "first divergence dest" 2 f.Diff.dest;
      Alcotest.(check string) "LWD decision" "push-out[3,-1]"
        (Diff.decision_to_string f.Diff.a);
      Alcotest.(check string) "LQD decision" "drop[-1]"
        (Diff.decision_to_string f.Diff.b));
    (* The timeline covers every slot and its last row carries the final
       cumulative objectives. *)
    Alcotest.(check int) "rows" 400 (List.length d.Diff.rows);
    let last = List.nth d.Diff.rows (List.length d.Diff.rows - 1) in
    Alcotest.(check bool) "cumulative objective ordered" true
      (last.Diff.cum_tx_a >= last.Diff.cum_tx_b)

let test_diff_rejects_misaligned () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let run seed =
    let r = Recorder.create ~cap:1_000_000 () in
    let inst = Proc_engine.instance ~recorder:r cfg (Smbm_core.P_lwd.make cfg) in
    let workload =
      Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed ()
    in
    trace_of_run ~slots:100 ~flush_every:(Some 50) ~workload [ (inst, r) ]
  in
  let sa = source (run 1) "LWD" and sb = source (run 2) "LWD" in
  match Diff.diff ~a:sa ~b:sb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "diffed traces of different arrival instances"

(* --- attribution: conservation against live metrics --- *)

let check_conserved label (att : Attribution.t) ~measured_gap =
  Alcotest.(check int)
    (label ^ ": gap equals live metrics gap")
    measured_gap att.Attribution.gap;
  Alcotest.(check int)
    (label ^ ": charged + uncharged - credits = gap")
    att.Attribution.gap
    (att.Attribution.charged + att.Attribution.uncharged
   - att.Attribution.credits);
  List.iter
    (fun (l : Attribution.loss) ->
      if l.Attribution.charged > l.Attribution.capacity then
        Alcotest.failf "%s: loss at line %d overcharged" label
          l.Attribution.lineno)
    att.Attribution.losses

let test_attribution_conservation_proc () =
  let a, b, sa, sb = diff_pair () in
  match Attribution.attribute ~a:sa ~b:sb with
  | Error e -> Alcotest.failf "attribution failed: %s" e
  | Ok att ->
    check_conserved "proc LWD vs LQD" att
      ~measured_gap:
        (Metrics.transmitted_value a.Instance.metrics
        - Metrics.transmitted_value b.Instance.metrics);
    Alcotest.(check bool) "per-port attribution" true
      att.Attribution.per_port_mode;
    (* Every charged loss made it into the ranking, most expensive first. *)
    let rec desc = function
      | (x : Attribution.loss) :: (y :: _ as rest) ->
        x.Attribution.charged >= y.Attribution.charged && desc rest
      | _ -> true
    in
    Alcotest.(check bool) "ranking sorted by charge" true
      (desc att.Attribution.ranked)

let prop_attribution_conserves_gap =
  QCheck2.Test.make
    ~name:"attribution conserves the throughput gap across random runs"
    ~count:10
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 10 40))
    (fun (seed, load10) ->
      let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
      let ra = Recorder.create ~cap:1_000_000 () in
      let rb = Recorder.create ~cap:1_000_000 () in
      let a =
        Proc_engine.instance ~recorder:ra cfg (Smbm_core.P_lwd.make cfg)
      in
      let b =
        Proc_engine.instance ~recorder:rb cfg (Smbm_core.P_lqd.make cfg)
      in
      let workload =
        Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg
          ~load:(float_of_int load10 /. 10.0)
          ~seed ()
      in
      let trace =
        trace_of_run ~slots:200 ~flush_every:(Some 50) ~workload
          [ (a, ra); (b, rb) ]
      in
      match
        Attribution.attribute ~a:(source trace "LWD") ~b:(source trace "LQD")
      with
      | Error e -> QCheck2.Test.fail_report e
      | Ok att ->
        att.Attribution.gap
        = Metrics.transmitted_value a.Instance.metrics
          - Metrics.transmitted_value b.Instance.metrics
        && att.Attribution.charged + att.Attribution.uncharged
           - att.Attribution.credits
           = att.Attribution.gap)

let suite =
  [
    Alcotest.test_case "round trip: proc" `Quick test_round_trip_proc;
    Alcotest.test_case "round trip: value" `Quick test_round_trip_value;
    Alcotest.test_case "round trip: hybrid" `Quick test_round_trip_hybrid;
    Qc.to_alcotest prop_round_trip_proc_random;
    Alcotest.test_case "diff: seeded golden divergence" `Quick test_diff_golden;
    Alcotest.test_case "diff: rejects misaligned traces" `Quick
      test_diff_rejects_misaligned;
    Alcotest.test_case "attribution: conservation (proc)" `Quick
      test_attribution_conservation_proc;
    Qc.to_alcotest prop_attribution_conserves_gap;
  ]
