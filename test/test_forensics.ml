(* Trace forensics: replay reconstructs metrics bit-identically from a
   trace alone (proc, value, hybrid), diff pins the first divergent
   admission on a seeded pair, and attribution's regret accounting
   conserves the measured throughput gap. *)

open Smbm_obs
open Smbm_sim
open Smbm_forensics

let mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 10 }

(* Run [insts] (each wired to its own recorder) over [workload], write the
   dumps into one interleaved trace file, and load it back. *)
let trace_of_run ~slots ~flush_every ~workload insts_recs =
  Experiment.run
    ~params:{ Experiment.slots; flush_every; check_every = Some 50 }
    ~workload
    (List.map fst insts_recs);
  let path = Filename.temp_file "smbm_forensics" ".jsonl" in
  let sink = Sink.file path in
  List.iter
    (fun (_, r) -> List.iter (Sink.event sink) (Recorder.dump r))
    insts_recs;
  Sink.close sink;
  let trace = Trace_file.load path in
  Sys.remove path;
  match trace with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace load failed: %s" e

let source trace name =
  match Trace_file.find trace name with
  | Ok s -> s
  | Error e -> Alcotest.failf "source %s: %s" name e

(* The round-trip certificate: replay the instance's stream and demand the
   reconstructed metrics serialize to the very same bytes as the live
   run's. *)
let check_round_trip label (inst : Instance.t) trace =
  let r = Replay.replay (source trace inst.Instance.name) in
  (match r.Replay.status with
  | Replay.Verified { slots; checks } ->
    Alcotest.(check bool)
      (label ^ ": verification ran")
      true
      (slots > 0 && checks >= slots)
  | Replay.Unverifiable _ ->
    Alcotest.failf "%s: complete trace reported unverifiable" label);
  Alcotest.(check (list string))
    (label ^ ": metrics bit-identical")
    (Metrics.to_jsonl inst.Instance.metrics)
    (Metrics.to_jsonl r.Replay.metrics)

(* --- round trips, one per switch model --- *)

let test_round_trip_proc () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst = Proc_engine.instance ~recorder cfg (Smbm_core.P_lwd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed:11 ()
  in
  let trace =
    trace_of_run ~slots:400 ~flush_every:(Some 100) ~workload
      [ (inst, recorder) ]
  in
  check_round_trip "proc/LWD" inst trace

let test_round_trip_value () =
  let cfg = Smbm_core.Value_config.make ~ports:4 ~max_value:8 ~buffer:8 () in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst = Value_engine.instance ~recorder cfg (Smbm_core.V_mrd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.value_port_workload ~mmpp ~config:cfg ~load:2.5
      ~seed:7 ()
  in
  let trace =
    trace_of_run ~slots:400 ~flush_every:(Some 100) ~workload
      [ (inst, recorder) ]
  in
  check_round_trip "value/MRD" inst trace

let test_round_trip_hybrid () =
  let cfg =
    Smbm_hybrid.Hybrid_config.contiguous ~k:4 ~max_value:8 ~buffer:16 ()
  in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst =
    Smbm_hybrid.Hybrid_engine.instance ~recorder cfg
      Smbm_hybrid.Hybrid_policy.lwd
  in
  let rng = Smbm_prelude.Rng.create ~seed:5 in
  let slots = 300 in
  let arrivals =
    Array.init slots (fun _ ->
        List.init
          (Smbm_prelude.Rng.poisson rng ~lambda:3.0)
          (fun _ ->
            let dest = Smbm_prelude.Rng.int rng 4 in
            let value = 1 + Smbm_prelude.Rng.int rng 8 in
            Smbm_core.Arrival.make ~dest ~value ()))
  in
  let workload = Smbm_traffic.Workload.of_slots arrivals in
  let trace =
    trace_of_run ~slots ~flush_every:(Some 100) ~workload [ (inst, recorder) ]
  in
  check_round_trip "hybrid/LWD" inst trace

let prop_round_trip_proc_random =
  QCheck2.Test.make
    ~name:"replay reconstructs proc metrics across random runs" ~count:10
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 5 40) (int_range 5 20))
    (fun (seed, load10, buffer) ->
      let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer () in
      let recorder = Recorder.create ~cap:1_000_000 () in
      let inst =
        Proc_engine.instance ~recorder cfg (Smbm_core.P_lqd.make cfg)
      in
      let workload =
        Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg
          ~load:(float_of_int load10 /. 10.0)
          ~seed ()
      in
      let trace =
        trace_of_run ~slots:200 ~flush_every:(Some 50) ~workload
          [ (inst, recorder) ]
      in
      let r = Replay.replay (source trace inst.Instance.name) in
      Metrics.to_jsonl inst.Instance.metrics = Metrics.to_jsonl r.Replay.metrics)

(* --- diff: seeded golden --- *)

(* LWD vs LQD on one seeded workload.  The pinned numbers are this
   workload's ground truth: the first slot where weighted and unweighted
   victim selection part ways. *)
let diff_pair () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let ra = Recorder.create ~cap:1_000_000 () in
  let rb = Recorder.create ~cap:1_000_000 () in
  let a = Proc_engine.instance ~recorder:ra cfg (Smbm_core.P_lwd.make cfg) in
  let b = Proc_engine.instance ~recorder:rb cfg (Smbm_core.P_lqd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed:42 ()
  in
  let trace =
    trace_of_run ~slots:400 ~flush_every:(Some 100) ~workload
      [ (a, ra); (b, rb) ]
  in
  (a, b, source trace "LWD", source trace "LQD")

let test_diff_golden () =
  let _, _, sa, sb = diff_pair () in
  match Diff.diff ~a:sa ~b:sb with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
    Alcotest.(check bool) "policies do diverge" true (d.Diff.diffs > 0);
    (match d.Diff.first with
    | None -> Alcotest.fail "no first divergence reported"
    | Some f ->
      Alcotest.(check int) "first divergence slot" 29 f.Diff.slot;
      Alcotest.(check int) "first divergence arrival index" 2 f.Diff.index;
      Alcotest.(check int) "first divergence dest" 2 f.Diff.dest;
      Alcotest.(check string) "LWD decision" "push-out[3,-1]"
        (Diff.decision_to_string f.Diff.a);
      Alcotest.(check string) "LQD decision" "drop[-1]"
        (Diff.decision_to_string f.Diff.b));
    (* The timeline covers every slot and its last row carries the final
       cumulative objectives. *)
    Alcotest.(check int) "rows" 400 (List.length d.Diff.rows);
    let last = List.nth d.Diff.rows (List.length d.Diff.rows - 1) in
    Alcotest.(check bool) "cumulative objective ordered" true
      (last.Diff.cum_tx_a >= last.Diff.cum_tx_b)

let test_diff_rejects_misaligned () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let run seed =
    let r = Recorder.create ~cap:1_000_000 () in
    let inst = Proc_engine.instance ~recorder:r cfg (Smbm_core.P_lwd.make cfg) in
    let workload =
      Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed ()
    in
    trace_of_run ~slots:100 ~flush_every:(Some 50) ~workload [ (inst, r) ]
  in
  let sa = source (run 1) "LWD" and sb = source (run 2) "LWD" in
  match Diff.diff ~a:sa ~b:sb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "diffed traces of different arrival instances"

(* --- attribution: conservation against live metrics --- *)

let check_conserved label (att : Attribution.t) ~measured_gap =
  Alcotest.(check int)
    (label ^ ": gap equals live metrics gap")
    measured_gap att.Attribution.gap;
  Alcotest.(check int)
    (label ^ ": charged + uncharged - credits = gap")
    att.Attribution.gap
    (att.Attribution.charged + att.Attribution.uncharged
   - att.Attribution.credits);
  List.iter
    (fun (l : Attribution.loss) ->
      if l.Attribution.charged > l.Attribution.capacity then
        Alcotest.failf "%s: loss at line %d overcharged" label
          l.Attribution.lineno)
    att.Attribution.losses

let test_attribution_conservation_proc () =
  let a, b, sa, sb = diff_pair () in
  match Attribution.attribute ~a:sa ~b:sb with
  | Error e -> Alcotest.failf "attribution failed: %s" e
  | Ok att ->
    check_conserved "proc LWD vs LQD" att
      ~measured_gap:
        (Metrics.transmitted_value a.Instance.metrics
        - Metrics.transmitted_value b.Instance.metrics);
    Alcotest.(check bool) "per-port attribution" true
      att.Attribution.per_port_mode;
    (* Every charged loss made it into the ranking, most expensive first. *)
    let rec desc = function
      | (x : Attribution.loss) :: (y :: _ as rest) ->
        x.Attribution.charged >= y.Attribution.charged && desc rest
      | _ -> true
    in
    Alcotest.(check bool) "ranking sorted by charge" true
      (desc att.Attribution.ranked)

let prop_attribution_conserves_gap =
  QCheck2.Test.make
    ~name:"attribution conserves the throughput gap across random runs"
    ~count:10
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 10 40))
    (fun (seed, load10) ->
      let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
      let ra = Recorder.create ~cap:1_000_000 () in
      let rb = Recorder.create ~cap:1_000_000 () in
      let a =
        Proc_engine.instance ~recorder:ra cfg (Smbm_core.P_lwd.make cfg)
      in
      let b =
        Proc_engine.instance ~recorder:rb cfg (Smbm_core.P_lqd.make cfg)
      in
      let workload =
        Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg
          ~load:(float_of_int load10 /. 10.0)
          ~seed ()
      in
      let trace =
        trace_of_run ~slots:200 ~flush_every:(Some 50) ~workload
          [ (a, ra); (b, rb) ]
      in
      match
        Attribution.attribute ~a:(source trace "LWD") ~b:(source trace "LQD")
      with
      | Error e -> QCheck2.Test.fail_report e
      | Ok att ->
        att.Attribution.gap
        = Metrics.transmitted_value a.Instance.metrics
          - Metrics.transmitted_value b.Instance.metrics
        && att.Attribution.charged + att.Attribution.uncharged
           - att.Attribution.credits
           = att.Attribution.gap)

(* --- binary trace format --- *)

(* Every kind, with the corners the codec must carry: negative dests
   (Transmit_bulk's port-agnostic -1), strings needing JSON escapes,
   repeated interned strings, slot 0, large payloads. *)
let binary_corner_events =
  List.concat_map
    (fun (slot, src, kind) -> [ Event.make ~src ~slot kind ])
    [
      (0, "x=4/LWD", Event.Arrival { dest = 0 });
      (1, "x=4/LWD", Event.Accept { dest = 3 });
      (1, "a\"b\\c\nd", Event.Push_out { victim = 2; dest = 5; lost = 3 });
      (2, "x=4/LWD", Event.Drop { dest = 1; value = 6 });
      (3, "x=4/LWD", Event.Transmit { dest = 4; value = 9; latency = 123456789 });
      (3, "x=4/LWD", Event.Transmit_bulk { dest = -1; count = 3; value = 12 });
      (4, "x=4/LWD", Event.Flush { count = 7 });
      (4, "x=4/LWD", Event.Slot_end { occupancy = 42 });
      (5, "x=4/LWD", Event.Reconfig { what = "policy"; target = "L\tQD" });
      (6, "x=4/LWD", Event.Health { rule = "p99"; tripped = true; reason = "over" });
      (6, "x=4/LWD", Event.Health { rule = "p99"; tripped = false; reason = "ok" });
      (7, "", Event.Truncated { evicted = 19 });
    ]

let test_binary_round_trip_all_kinds () =
  let events = binary_corner_events in
  let path = Filename.temp_file "smbm_forensics" ".bin" in
  (match Trace_file.write_binary path events with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "written file is binary" true (Trace_file.is_binary path);
  (match Trace_file.read_events path with
  | Error e -> Alcotest.fail e
  | Ok indexed ->
    Alcotest.(check bool) "events identical" true
      (List.map snd indexed = events);
    (* Event numbering stays 1-based like JSONL line numbers. *)
    Alcotest.(check int) "first index" 1 (fst (List.hd indexed)));
  (* The high-level loader consumes it transparently (the Truncated
     marker's src is a scope, not a source of its own). *)
  (match Trace_file.load path with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check int) "sources" 2 (List.length t.Trace_file.sources));
  Sys.remove path

let test_binary_rejects_corrupt () =
  let events = binary_corner_events in
  let data =
    match Trace_file.to_binary events with s -> s
  in
  let bad =
    [
      (* A file without the magic falls back to JSONL parsing, which
         rejects the binary noise; an outright wrong version or a damaged
         body must fail the binary decoder itself. *)
      "SMBMTRC" (* short magic: JSONL fallback, not a JSON object *);
      "SMBMTRC\x02" ^ String.sub data 8 (String.length data - 8) (* version *);
      String.sub data 0 (String.length data - 1) (* truncated tail *);
      data ^ "\x00" (* trailing garbage *);
    ]
  in
  let path = Filename.temp_file "smbm_forensics" ".bin" in
  List.iteri
    (fun i d ->
      let oc = open_out_bin path in
      output_string oc d;
      close_out oc;
      match Trace_file.read_events path with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "corrupt variant %d accepted" i)
    bad;
  Sys.remove path

(* Lossless both ways: JSONL -> binary -> JSONL is byte-identical, and
   binary -> JSONL -> binary is too (both serializers are canonical). *)
let test_convert_lossless () =
  let events = binary_corner_events in
  let jsonl = List.map Event.to_json events in
  let bin = Trace_file.to_binary events in
  let jpath = Filename.temp_file "smbm_forensics" ".jsonl" in
  let oc = open_out jpath in
  List.iter (fun l -> output_string oc (l ^ "\n")) jsonl;
  close_out oc;
  (* JSONL file and binary bytes decode to the same events... *)
  (match Trace_file.read_events jpath with
  | Error e -> Alcotest.fail e
  | Ok indexed ->
    Alcotest.(check bool) "jsonl decodes to events" true
      (List.map snd indexed = events));
  (* ...and re-encoding the decoded stream reproduces both byte-exactly. *)
  let bpath = Filename.temp_file "smbm_forensics" ".bin" in
  (match Trace_file.write_binary bpath events with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Trace_file.read_events bpath with
  | Error e -> Alcotest.fail e
  | Ok indexed ->
    Alcotest.(check (list string)) "binary -> jsonl lossless" jsonl
      (List.map (fun (_, e) -> Event.to_json e) indexed);
    Alcotest.(check bool) "jsonl -> binary lossless" true
      (Trace_file.to_binary (List.map snd indexed) = bin));
  Sys.remove jpath;
  Sys.remove bpath

(* --- postmortem: write / load / certify --- *)

(* A real engine run dumped the way the daemon does it: flight ring +
   counter snapshot.  With an unevicted ring, certify must replay the
   whole window and match every counter and port occupancy exactly. *)
let test_postmortem_write_load_certify () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let flight = Flight.create ~cap:65536 () in
  let inst, sw = Proc_engine.create ~flight cfg (Smbm_core.P_lwd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed:3 ()
  in
  Experiment.run
    ~params:{ Experiment.slots = 200; flush_every = Some 50; check_every = None }
    ~workload [ inst ];
  let m = inst.Instance.metrics in
  let meta =
    {
      Postmortem.reason = "health";
      detail = "p99_slot_time: over budget";
      slot = 200;
      model = "proc";
      src = inst.Instance.name;
      policy = "LWD";
      buffer = 8;
      evicted = Flight.dropped flight;
      events = List.length (Flight.dump flight);
      counters =
        [
          ("arrivals", Metrics.arrivals m);
          ("accepted", Metrics.accepted m);
          ("dropped", Metrics.dropped m);
          ("pushed_out", Metrics.pushed_out m);
          ("transmitted", Metrics.transmitted m);
          ("transmitted_value", Metrics.transmitted_value m);
          ("flushed", Metrics.flushed m);
          ("in_buffer", Metrics.in_buffer m);
        ];
      ports = Array.init 4 (Smbm_core.Proc_switch.queue_length sw);
      health = [ ("p99_slot_time", true); ("conservation", false) ];
    }
  in
  let base = Filename.temp_file "smbm_postmortem" "" in
  (match Postmortem.write ~base meta (Flight.dump flight) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Load by base, by trace path, by meta path. *)
  List.iter
    (fun p ->
      match Postmortem.load p with
      | Error e -> Alcotest.failf "load %s: %s" p e
      | Ok (m', _) ->
        Alcotest.(check string) "reason survives" "health" m'.Postmortem.reason)
    [ base; Postmortem.trace_path base; Postmortem.meta_path base ];
  (match Postmortem.load base with
  | Error e -> Alcotest.fail e
  | Ok (meta', trace) -> (
    Alcotest.(check bool) "meta round-trips" true (meta' = meta);
    match Postmortem.certify meta' trace with
    | Error e -> Alcotest.failf "certify: %s" e
    | Ok (Postmortem.Certified { slots; events; checked }) ->
      Alcotest.(check int) "all slots" 200 slots;
      Alcotest.(check bool) "events counted" true (events > 0);
      Alcotest.(check bool) "counters checked" true (checked >= 8)
    | Ok (Postmortem.Window _) ->
      Alcotest.fail "unevicted dump certified as window only"));
  (* A tampered snapshot must be caught. *)
  let bad =
    {
      meta with
      Postmortem.counters =
        List.map
          (fun (k, v) -> if k = "transmitted" then (k, v + 1) else (k, v))
          meta.Postmortem.counters;
    }
  in
  (match Postmortem.load base with
  | Error e -> Alcotest.fail e
  | Ok (_, trace) -> (
    match Postmortem.certify bad trace with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "tampered counter certified"));
  Sys.remove (Postmortem.trace_path base);
  Sys.remove (Postmortem.meta_path base);
  Sys.remove base

(* An evicted window downgrades to a Window verdict, never Certified. *)
let test_postmortem_window_verdict () =
  let cfg = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let flight = Flight.create ~cap:64 () in
  let inst = Proc_engine.instance ~flight cfg (Smbm_core.P_lwd.make cfg) in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp ~config:cfg ~load:2.0 ~seed:3 ()
  in
  Experiment.run
    ~params:{ Experiment.slots = 200; flush_every = Some 50; check_every = None }
    ~workload [ inst ];
  Alcotest.(check bool) "ring wrapped" true (Flight.dropped flight > 0);
  let meta =
    {
      Postmortem.reason = "sink";
      detail = "write: disk full";
      slot = 200;
      model = "proc";
      src = inst.Instance.name;
      policy = "LWD";
      buffer = 8;
      evicted = Flight.dropped flight;
      events = List.length (Flight.dump flight);
      counters = [];
      ports = [||];
      health = [];
    }
  in
  let base = Filename.temp_file "smbm_postmortem" "" in
  (match Postmortem.write ~base meta (Flight.dump flight) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Postmortem.load base with
  | Error e -> Alcotest.fail e
  | Ok (meta', trace) -> (
    match Postmortem.certify meta' trace with
    | Ok (Postmortem.Window { evicted; oldest_slot }) ->
      Alcotest.(check int) "evicted count" (Flight.dropped flight) evicted;
      Alcotest.(check bool) "oldest slot sane" true (oldest_slot >= 0)
    | Ok (Postmortem.Certified _) -> Alcotest.fail "evicted dump certified"
    | Error e -> Alcotest.failf "certify: %s" e));
  Sys.remove (Postmortem.trace_path base);
  Sys.remove (Postmortem.meta_path base);
  Sys.remove base

let suite =
  [
    Alcotest.test_case "round trip: proc" `Quick test_round_trip_proc;
    Alcotest.test_case "round trip: value" `Quick test_round_trip_value;
    Alcotest.test_case "round trip: hybrid" `Quick test_round_trip_hybrid;
    Qc.to_alcotest prop_round_trip_proc_random;
    Alcotest.test_case "diff: seeded golden divergence" `Quick test_diff_golden;
    Alcotest.test_case "diff: rejects misaligned traces" `Quick
      test_diff_rejects_misaligned;
    Alcotest.test_case "attribution: conservation (proc)" `Quick
      test_attribution_conservation_proc;
    Qc.to_alcotest prop_attribution_conserves_gap;
    Alcotest.test_case "binary: round-trips all kinds" `Quick
      test_binary_round_trip_all_kinds;
    Alcotest.test_case "binary: rejects corrupt data" `Quick
      test_binary_rejects_corrupt;
    Alcotest.test_case "convert: lossless both ways" `Quick
      test_convert_lossless;
    Alcotest.test_case "postmortem: write/load/certify" `Quick
      test_postmortem_write_load_certify;
    Alcotest.test_case "postmortem: evicted window verdict" `Quick
      test_postmortem_window_verdict;
  ]
