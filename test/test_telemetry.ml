(* The telemetry plane: watchdog hysteresis, the stats-socket protocol
   against synthetic views, the JSON round-trip the remote watcher relies
   on, and — end to end — a daemon answering queries over a real Unix
   socket with zero effect on engine output. *)

open Smbm_core
open Smbm_serve
module Scenario = Smbm_traffic.Scenario
module Trace = Smbm_traffic.Trace
module Health = Smbm_obs.Health
module Registry = Smbm_obs.Registry
module Json = Smbm_obs.Json
module Span = Smbm_obs.Span

let proc_config = Proc_config.contiguous ~k:8 ~buffer:32 ()
let mmpp sources = { Scenario.default_mmpp with sources }

let proc_workload ?(sources = 20) ~seed () =
  Scenario.proc_workload ~mmpp:(mmpp sources) ~config:proc_config ~load:2.0
    ~seed ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let is_err = function
  | [ line ] -> String.length line >= 4 && String.sub line 0 4 = "err "
  | _ -> false

(* --- Health --- *)

let test_health_hysteresis () =
  let verdict = ref Health.Pass in
  let events = ref [] in
  let m =
    Health.create
      ~on_transition:(fun e -> events := e :: !events)
      [
        Health.rule ~name:"r" ~trip_after:2 ~clear_after:2 (fun () -> !verdict);
      ]
  in
  Health.evaluate m;
  Alcotest.(check bool) "healthy at start" false (Health.degraded m);
  verdict := Health.Fail "bad";
  Health.evaluate m;
  Alcotest.(check bool) "one bad window does not trip" false
    (Health.degraded m);
  Health.evaluate m;
  Alcotest.(check bool) "second consecutive trips" true (Health.degraded m);
  Health.evaluate m;
  Alcotest.(check int) "transitions only: trip reported once" 1
    (List.length !events);
  verdict := Health.Pass;
  Health.evaluate m;
  Alcotest.(check bool) "one good window does not clear" true
    (Health.degraded m);
  Health.evaluate m;
  Alcotest.(check bool) "second consecutive clears" false (Health.degraded m);
  Alcotest.(check int) "clear transition reported" 2 (List.length !events);
  (match !events with
  | [ clear; trip ] ->
    Alcotest.(check bool) "trip event tripped" true trip.Health.tripped;
    Alcotest.(check string) "trip carries the reason" "bad" trip.Health.reason;
    Alcotest.(check bool) "clear event not tripped" false clear.Health.tripped
  | _ -> Alcotest.fail "expected exactly two transitions");
  match Health.states m with
  | [ ("r", s) ] ->
    Alcotest.(check bool) "state cleared" false s.Health.v_tripped;
    Alcotest.(check int) "lifetime trips" 1 s.Health.v_trips
  | _ -> Alcotest.fail "unexpected states shape"

let test_health_no_flap_on_alternation () =
  (* An alternating verdict never reaches two consecutive failures, so the
     default hysteresis never trips — one bad window cannot flap. *)
  let flip = ref false in
  let m =
    Health.create
      [
        Health.rule ~name:"r" (fun () ->
            flip := not !flip;
            if !flip then Health.Fail "noisy" else Health.Pass);
      ]
  in
  for _ = 1 to 20 do
    Health.evaluate m
  done;
  Alcotest.(check bool) "never tripped" false (Health.degraded m)

let test_health_trip_after_one () =
  let verdict = ref (Health.Fail "exact") in
  let m =
    Health.create
      [
        Health.rule ~name:"conservation" ~trip_after:1 ~clear_after:1 (fun () ->
            !verdict);
      ]
  in
  Health.evaluate m;
  Alcotest.(check bool) "exact condition trips immediately" true
    (Health.degraded m);
  verdict := Health.Pass;
  Health.evaluate m;
  Alcotest.(check bool) "and clears immediately" false (Health.degraded m);
  match Health.rule ~name:"bad" ~trip_after:0 (fun () -> Health.Pass) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "trip_after < 1 accepted"

(* --- the protocol, against a synthetic view --- *)

let synthetic_view () =
  let reg = Registry.create () in
  let c = Registry.counter reg "arrivals" in
  let g = Registry.gauge reg "occupancy_mean" in
  let h = Registry.histogram reg "latency" in
  Registry.add c 1234;
  Registry.set g 5.5;
  List.iter (Registry.observe h) [ 1.0; 2.0; 4.0; 800.0 ];
  let server_reg = Registry.create () in
  let sh = Registry.histogram server_reg "stage/engine_us" in
  List.iter (Registry.observe sh) [ 10.0; 20.0; 30.0 ];
  let server = Registry.snapshot server_reg in
  let monitor =
    Health.create [ Health.rule ~name:"shed_rate" (fun () -> Health.Pass) ]
  in
  Health.evaluate monitor;
  {
    Telemetry.at = 12.5;
    slot = 4200;
    uptime = 12.5;
    policy = "LQD";
    buffer = 64;
    ring_occupancy = 3;
    ring_capacity = 64;
    ring_max = 17;
    shed_slots = 0;
    shed_packets = 0;
    window =
      {
        Telemetry.w_span = 10.0;
        slots_per_sec = 420.0;
        arrivals_per_sec = 1650.5;
        accepted_per_sec = 1600.0;
        drops_per_sec = 50.5;
        shed_slots_per_sec = 0.0;
        p50_us = 12.0;
        p95_us = 40.0;
        p99_us = 85.0;
      };
    engine = Registry.snapshot reg;
    server;
    spans = Telemetry.stage_aggregates server;
    health = Health.states monitor;
    degraded = false;
  }

let test_handle_protocol () =
  Alcotest.(check bool) "err before first publish" true
    (is_err (Telemetry.handle None "stats"));
  let v = Some (synthetic_view ()) in
  let stats = Telemetry.handle v "stats" in
  Alcotest.(check bool) "stats is a multi-line summary" true
    (List.length stats >= 4);
  Alcotest.(check bool) "stats mentions the policy" true
    (List.exists (fun l -> contains l "LQD") stats);
  Alcotest.(check bool) "stats mentions health" true
    (List.exists (fun l -> contains l "health ok") stats);
  (match Telemetry.handle v "health" with
  | first :: rules ->
    Alcotest.(check string) "health leads with the verdict" "ok" first;
    Alcotest.(check int) "one line per rule" 1 (List.length rules);
    Alcotest.(check bool) "rule line names the rule" true
      (contains (List.hd rules) "shed_rate")
  | [] -> Alcotest.fail "empty health answer");
  (match Telemetry.handle v "spans" with
  | [ line ] ->
    Alcotest.(check bool) "stage profile line" true
      (contains line "engine: count 3")
  | lines ->
    Alcotest.fail (Printf.sprintf "expected 1 span line, got %d"
                     (List.length lines)));
  Alcotest.(check bool) "unknown command errors" true
    (is_err (Telemetry.handle v "bogus"));
  Alcotest.(check bool) "empty command errors" true (is_err (Telemetry.handle v ""));
  Alcotest.(check bool) "whitespace is trimmed" false
    (is_err (Telemetry.handle v "  stats  "))

let test_stats_json_round_trip () =
  let v = synthetic_view () in
  match Telemetry.handle (Some v) "stats json" with
  | [ line ] -> (
    match Json.parse_flat line with
    | Error msg -> Alcotest.fail msg
    | Ok fields ->
      Alcotest.(check bool) "slot" true (List.assoc "slot" fields = Json.Int 4200);
      Alcotest.(check bool) "policy" true
        (List.assoc "policy" fields = Json.Str "LQD");
      Alcotest.(check bool) "degraded" true
        (List.assoc "degraded" fields = Json.Bool false);
      (match List.assoc "window.arrivals_per_sec" fields with
      | Json.Float f -> Alcotest.(check (float 1e-9)) "window rate" 1650.5 f
      | _ -> Alcotest.fail "window rate not a float");
      (match List.assoc "health/shed_rate" fields with
      | Json.Str s -> Alcotest.(check string) "health field" "ok" s
      | _ -> Alcotest.fail "health field missing");
      (* The engine samples reconstruct exactly — %.17g floats round-trip,
         and bucket shapes ride the compact string — which is what lets a
         remote watcher run Rolling.Delta over two polls. *)
      let rebuilt = Telemetry.samples_of_json ~prefix:"engine" fields in
      Alcotest.(check int) "sample count"
        (List.length v.Telemetry.engine)
        (List.length rebuilt);
      List.iter2
        (fun (n0, s0) (n1, s1) ->
          Alcotest.(check string) "sample name" n0 n1;
          Alcotest.(check bool) (n0 ^ " survives the round-trip") true
            (s0 = s1))
        v.Telemetry.engine rebuilt)
  | lines ->
    Alcotest.fail
      (Printf.sprintf "stats json must be one line, got %d" (List.length lines))

let test_stage_aggregates () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "stage/flush_us" in
  List.iter (Registry.observe h) [ 100.0; 300.0 ];
  (* Non-stage instruments are ignored by the lift. *)
  Registry.incr (Registry.counter reg "shed_slots");
  ignore (Registry.histogram reg "slot_time_us");
  match Telemetry.stage_aggregates (Registry.snapshot reg) with
  | [ ("flush", a) ] ->
    Alcotest.(check int) "count" 2 a.Span.count;
    Alcotest.(check (float 1e-12)) "mean back to seconds" 200e-6
      a.Span.wall_mean;
    Alcotest.(check (float 1e-12)) "wall = n * mean" 400e-6 a.Span.wall;
    Alcotest.(check (float 1e-12)) "max back to seconds" 300e-6 a.Span.wall_max
  | aggs ->
    Alcotest.fail
      (Printf.sprintf "expected flush only, got %d aggregates"
         (List.length aggs))

(* --- the daemon, end to end --- *)

let test_daemon_telemetry_no_engine_effect () =
  (* The acceptance bar for the whole plane: the same recorded trace with
     telemetry on and off produces bit-identical engine metrics. *)
  let trace = Trace.record (proc_workload ~seed:23 ()) ~slots:400 in
  let compact = Trace.Compact.of_trace trace in
  let run ~telemetry () =
    Daemon.run ~ring_capacity:8 ~flush_every:100 ~telemetry ~stats_every:50
      ~p99_budget_us:1e9 ~model:(Model.Proc proc_config) ~policy:"NHST"
      ~ingest:(Daemon.Trace compact) ()
  in
  let plain = run ~telemetry:false () in
  let instrumented = run ~telemetry:true () in
  List.iter
    (fun (label, f) ->
      Alcotest.(check int) label (f plain) (f instrumented))
    [
      ("slots", fun (r : Daemon.report) -> r.Daemon.slots);
      ("arrivals", fun r -> r.Daemon.arrivals);
      ("accepted", fun r -> r.Daemon.accepted);
      ("transmitted", fun r -> r.Daemon.transmitted);
      ("dropped", fun r -> r.Daemon.dropped);
      ("flushed", fun r -> r.Daemon.flushed);
    ];
  Alcotest.(check bool) "conservation holds instrumented" true
    instrumented.Daemon.conservation_ok;
  Alcotest.(check bool) "healthy run is not degraded" false
    instrumented.Daemon.degraded;
  (* Telemetry on reports per-rule states (conservation, the p99 budget,
     ring high-water, shed rate); off reports nothing at all. *)
  Alcotest.(check int) "four rules reported" 4
    (List.length instrumented.Daemon.health);
  Alcotest.(check bool) "all rules ok" true
    (List.for_all (fun (_, tripped) -> not tripped) instrumented.Daemon.health);
  Alcotest.(check (list (pair string bool))) "no health with telemetry off" []
    plain.Daemon.health

let test_daemon_stats_socket_round_trip () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smbm-test-stats-%d.sock" (Unix.getpid ()))
  in
  let bank =
    Mmpp_bank.create ~mmpp:(mmpp 10) (Model.Proc proc_config) ~load:1.0 ~seed:3
      ()
  in
  (* The querier races the daemon from its own domain: retry until the
     first publication, then exercise the protocol mid-run. *)
  let querier =
    Domain.spawn (fun () ->
        let rec attempt n =
          match Telemetry.query ~path:sock "stats json" with
          | Ok lines -> Ok lines
          | Error _ when n > 0 ->
            Unix.sleepf 0.02;
            attempt (n - 1)
          | Error _ as e -> e
        in
        let json = attempt 500 in
        let health = Telemetry.query ~path:sock "health" in
        let spans = Telemetry.query ~path:sock "spans" in
        let bogus = Telemetry.query ~path:sock "bogus" in
        (json, health, spans, bogus))
  in
  let report =
    Daemon.run ~ring_capacity:8 ~stats_sock:sock ~stats_every:20 ~rate:2000.0
      ~slots:2000 ~model:(Model.Proc proc_config) ~policy:"LWD"
      ~ingest:(Daemon.Bank bank) ()
  in
  let json, health, spans, bogus = Domain.join querier in
  (match json with
  | Ok [ line ] -> (
    match Json.parse_flat line with
    | Error msg -> Alcotest.fail ("stats json does not parse: " ^ msg)
    | Ok fields ->
      (match List.assoc_opt "slot" fields with
      | Some (Json.Int s) ->
        Alcotest.(check bool) "published mid-run" true (s > 0 && s <= 2000)
      | _ -> Alcotest.fail "no slot field");
      Alcotest.(check bool) "policy travels" true
        (List.assoc_opt "policy" fields = Some (Json.Str "LWD"));
      let engine = Telemetry.samples_of_json ~prefix:"engine" fields in
      Alcotest.(check bool) "engine metrics travel" true
        (List.mem_assoc "arrivals" engine);
      let server = Telemetry.samples_of_json ~prefix:"server" fields in
      Alcotest.(check bool) "server instruments travel" true
        (List.mem_assoc "slot_time_us" server))
  | Ok lines ->
    Alcotest.fail
      (Printf.sprintf "stats json: expected 1 line, got %d" (List.length lines))
  | Error msg -> Alcotest.fail ("stats json never answered: " ^ msg));
  (match health with
  | Ok (first :: rules) ->
    Alcotest.(check string) "health ok under load" "ok" first;
    Alcotest.(check bool) "rules listed" true (List.length rules >= 3)
  | Ok [] -> Alcotest.fail "empty health answer"
  | Error msg -> Alcotest.fail ("health query failed: " ^ msg));
  (match spans with
  | Ok lines ->
    Alcotest.(check bool) "engine stage profiled" true
      (List.exists (fun l -> contains l "engine:") lines);
    Alcotest.(check bool) "ring wait profiled" true
      (List.exists (fun l -> contains l "ring_wait:") lines)
  | Error msg -> Alcotest.fail ("spans query failed: " ^ msg));
  (match bogus with
  | Error msg -> Alcotest.(check bool) "unknown command errors" true
      (contains msg "unknown command")
  | Ok _ -> Alcotest.fail "bogus command accepted");
  Alcotest.(check int) "all slots served" 2000 report.Daemon.slots;
  Alcotest.(check bool) "healthy" false report.Daemon.degraded;
  Alcotest.(check bool)
    (Option.value ~default:"conservation holds" report.Daemon.conservation_error)
    true report.Daemon.conservation_ok;
  Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists sock)

let suite =
  [
    Alcotest.test_case "health hysteresis" `Quick test_health_hysteresis;
    Alcotest.test_case "health never flaps on alternation" `Quick
      test_health_no_flap_on_alternation;
    Alcotest.test_case "health trip_after one" `Quick test_health_trip_after_one;
    Alcotest.test_case "protocol against a synthetic view" `Quick
      test_handle_protocol;
    Alcotest.test_case "stats json round-trip" `Quick
      test_stats_json_round_trip;
    Alcotest.test_case "stage aggregates" `Quick test_stage_aggregates;
    Alcotest.test_case "telemetry has no engine effect" `Slow
      test_daemon_telemetry_no_engine_effect;
    Alcotest.test_case "stats socket round-trip under load" `Slow
      test_daemon_stats_socket_round_trip;
  ]
