open Smbm_core
open Smbm_serve
module Scenario = Smbm_traffic.Scenario
module Workload = Smbm_traffic.Workload
module Trace = Smbm_traffic.Trace
module Event = Smbm_obs.Event
module Recorder = Smbm_obs.Recorder
module Qc = QCheck_alcotest

let proc_config = Proc_config.contiguous ~k:8 ~buffer:32 ()
let mmpp sources = { Scenario.default_mmpp with sources }

let proc_workload ?(sources = 20) ~seed () =
  Scenario.proc_workload ~mmpp:(mmpp sources) ~config:proc_config ~load:2.0
    ~seed ()

let extract b =
  Array.init (Arrival_batch.length b) (fun i ->
      (Arrival_batch.dest b i, Arrival_batch.value b i, Arrival_batch.work b i))

(* --- the ring itself --- *)

let test_ring_shed_accounting () =
  (* Single-threaded and deterministic: with no consumer, a capacity-2 ring
     accepts exactly 2 slots and sheds the rest, counting slots and the
     packets inside them. *)
  let ring = Spsc_ring.create ~capacity:2 () in
  let fill b =
    for d = 0 to 2 do
      Arrival_batch.push b ~dest:d ~value:1
    done
  in
  let results =
    List.init 5 (fun _ -> Spsc_ring.produce ring ~policy:`Shed ~fill ())
  in
  Alcotest.(check (list bool))
    "first two pushed, rest shed"
    [ true; true; false; false; false ]
    (List.map (fun r -> r = Spsc_ring.Pushed) results);
  Alcotest.(check int) "shed slots" 3 (Spsc_ring.shed_slots ring);
  Alcotest.(check int) "shed packets" 9 (Spsc_ring.shed_packets ring);
  Alcotest.(check int) "occupancy" 2 (Spsc_ring.length ring);
  Alcotest.(check int) "high-water" 2 (Spsc_ring.max_occupancy ring);
  (* Drain after close: both published slots intact, then Drained. *)
  Spsc_ring.close ring;
  let seen = ref 0 in
  let rec drain () =
    match
      Spsc_ring.consume ring
        ~stop:(fun () -> false)
        ~f:(fun b ->
          incr seen;
          Alcotest.(check int) "slot content survives transit" 3
            (Arrival_batch.length b))
    with
    | Spsc_ring.Consumed -> drain ()
    | Spsc_ring.Drained -> ()
    | Spsc_ring.Stopped -> Alcotest.fail "stop predicate never set"
  in
  drain ();
  Alcotest.(check int) "both pushed slots consumed" 2 !seen

let test_ring_abort_unblocks_producer () =
  let ring = Spsc_ring.create ~capacity:1 () in
  let fill b = Arrival_batch.push b ~dest:0 ~value:1 in
  Alcotest.(check bool)
    "first push lands" true
    (Spsc_ring.produce ring ~policy:`Block ~fill () = Spsc_ring.Pushed);
  (* Ring is now full; a blocking producer on another domain can only
     return once the consumer aborts. *)
  let producer =
    Domain.spawn (fun () -> Spsc_ring.produce ring ~policy:`Block ~fill ())
  in
  Unix.sleepf 0.02;
  Spsc_ring.abort ring;
  Alcotest.(check bool)
    "blocked producer aborted" true
    (Domain.join producer = Spsc_ring.Aborted);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Spsc_ring.create: capacity must be >= 1") (fun () ->
      ignore (Spsc_ring.create ~capacity:0 ()))

(* S4: a batch that crossed the ring is bit-identical (dest, value, work,
   length, order) to what next_into on an identical workload yields
   directly — the hand-off neither reorders, duplicates, loses nor leaks
   stale contents from slot reuse (capacities smaller than the slot count
   force every Arrival_batch to be reused several times). *)
let prop_ring_transit_bit_identity =
  QCheck2.Test.make ~name:"ring transit is bit-identical to next_into"
    ~count:40
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* slots = int_range 1 60 in
      let* capacity = int_range 1 8 in
      pure (seed, slots, capacity))
    (fun (seed, slots, capacity) ->
      let w_ring = proc_workload ~seed () in
      let w_direct = proc_workload ~seed () in
      let ring = Spsc_ring.create ~capacity () in
      let producer =
        Domain.spawn (fun () ->
            for _ = 1 to slots do
              match
                Spsc_ring.produce ring ~policy:`Block
                  ~fill:(Workload.next_into w_ring) ()
              with
              | Spsc_ring.Pushed -> ()
              | Spsc_ring.Shed | Spsc_ring.Aborted ->
                failwith "blocking produce neither sheds nor aborts"
            done;
            Spsc_ring.close ring)
      in
      let got = ref [] in
      let rec consume () =
        match
          Spsc_ring.consume ring
            ~stop:(fun () -> false)
            ~f:(fun b -> got := extract b :: !got)
        with
        | Spsc_ring.Consumed -> consume ()
        | Spsc_ring.Drained -> ()
        | Spsc_ring.Stopped -> failwith "stop predicate never set"
      in
      consume ();
      Domain.join producer;
      let scratch = Arrival_batch.create () in
      let expected =
        List.init slots (fun _ ->
            Workload.next_into w_direct scratch;
            extract scratch)
      in
      List.rev !got = expected)

(* --- the MMPP bank --- *)

let bank_slots bank n =
  let b = Arrival_batch.create () in
  List.init n (fun _ ->
      Mmpp_bank.fill bank b;
      extract b)

let test_bank_sharding_deterministic () =
  let model = Model.Proc proc_config in
  let make ?pool shards =
    Mmpp_bank.create ~mmpp:(mmpp 10) ?pool ~shards model ~load:2.0 ~seed:7 ()
  in
  (* Same (seed, shards): identical streams, with and without a pool. *)
  let inline3 = bank_slots (make 3) 50 in
  Smbm_par.Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check bool)
        "pool does not change the stream" true
        (bank_slots (make ~pool 3) 50 = inline3));
  Alcotest.(check bool)
    "replayable: same seed, same stream" true
    (bank_slots (make 3) 50 = inline3);
  (* Aggregate rate is preserved by sharding. *)
  let rate n = Option.get (Mmpp_bank.mean_rate (make n)) in
  Alcotest.(check (float 1e-9)) "sharding preserves the rate" (rate 1) (rate 3);
  Alcotest.check_raises "shards bounded by sources"
    (Invalid_argument "Mmpp_bank.create: more shards than sources") (fun () ->
      ignore (make 11))

(* --- the daemon --- *)

let test_daemon_reconfig_proc () =
  let recorder = Recorder.create ~cap:200_000 () in
  let bank = Mmpp_bank.create ~mmpp:(mmpp 20) (Model.Proc proc_config) ~load:2.0 ~seed:11 () in
  let report =
    Daemon.run ~ring_capacity:8 ~recorder ~flush_every:250
      ~controls:
        [
          (200, Daemon.Set_policy "LQD");
          (400, Daemon.Resize_buffer 96);
          (600, Daemon.Resize_buffer 1);
          (* clamped to occupancy: no buffered packet may be dropped *)
          (700, Daemon.Set_policy "NO-SUCH-POLICY");
        ]
      ~slots:800 ~model:(Model.Proc proc_config) ~policy:"LWD"
      ~ingest:(Daemon.Bank bank) ()
  in
  Alcotest.(check int) "all slots served" 800 report.Daemon.slots;
  Alcotest.(check bool) "traffic flowed" true (report.Daemon.arrivals > 0);
  Alcotest.(check int) "three controls applied" 3 report.Daemon.reconfigs;
  Alcotest.(check int) "unknown policy rejected, not fatal" 1
    report.Daemon.reconfigs_rejected;
  Alcotest.(check bool)
    "ring bounded" true
    (report.Daemon.ring_max <= report.Daemon.ring_capacity);
  Alcotest.(check bool)
    "nothing shed under Block" true
    (report.Daemon.shed_slots = 0 && report.Daemon.shed_packets = 0);
  Alcotest.(check bool)
    (Option.value ~default:"conservation holds across reconfigurations"
       report.Daemon.conservation_error)
    true report.Daemon.conservation_ok;
  Alcotest.(check bool) "ran to ingest end" false report.Daemon.stopped;
  (* The reconfigurations are on the event record, in order. *)
  let reconfigs =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Reconfig { what; target } -> Some (e.Event.slot, what, target)
        | _ -> None)
      (Recorder.events recorder)
  in
  Alcotest.(check int) "three reconfig events" 3 (List.length reconfigs);
  (match reconfigs with
  | [ (s1, "policy", "LQD"); (s2, "buffer", "96"); (s3, "buffer", b3) ] ->
    Alcotest.(check (list int)) "at the scripted boundaries" [ 200; 400; 600 ]
      [ s1; s2; s3 ];
    (* The shrink was clamped to the live occupancy, which the arrival
       pressure keeps at or under the old B but above the absurd target. *)
    Alcotest.(check bool) "shrink clamped" true (int_of_string b3 >= 1)
  | _ -> Alcotest.fail "unexpected reconfig event shapes");
  (* Replay closes the loop: a stream containing reconfig events still
     folds back into certified state, and the reconstructed counters match
     the daemon's report. *)
  let lines =
    List.mapi
      (fun i event -> { Smbm_forensics.Trace_file.lineno = i + 1; event })
      (Recorder.events recorder)
  in
  let source =
    { Smbm_forensics.Trace_file.src = "serve"; lines; evicted = 0; oldest_slot = 0 }
  in
  let replayed = Smbm_forensics.Replay.replay source in
  (match replayed.Smbm_forensics.Replay.status with
  | Smbm_forensics.Replay.Verified _ -> ()
  | Smbm_forensics.Replay.Unverifiable _ ->
    Alcotest.fail "complete stream should certify");
  Alcotest.(check int) "replay reconstructs the arrival count"
    report.Daemon.arrivals
    (Smbm_sim.Metrics.arrivals replayed.Smbm_forensics.Replay.metrics)

let test_daemon_stop_control () =
  let bank = Mmpp_bank.create ~mmpp:(mmpp 10) (Model.Proc proc_config) ~load:1.0 ~seed:3 () in
  (* No slot bound, no duration: only the scripted Stop ends the run. *)
  let report =
    Daemon.run ~ring_capacity:4
      ~controls:[ (100, Daemon.Stop) ]
      ~model:(Model.Proc proc_config) ~policy:"LQD"
      ~ingest:(Daemon.Bank bank) ()
  in
  Alcotest.(check int) "stopped at the boundary" 100 report.Daemon.slots;
  Alcotest.(check bool) "flagged as stopped" true report.Daemon.stopped;
  Alcotest.(check bool)
    (Option.value ~default:"conservation holds" report.Daemon.conservation_error)
    true report.Daemon.conservation_ok

let test_daemon_value_swap () =
  let config = Value_config.make ~ports:8 ~max_value:8 ~buffer:32 () in
  let bank =
    Mmpp_bank.create ~mmpp:(mmpp 20) (Model.Value_uniform config) ~load:2.0
      ~seed:5 ()
  in
  let report =
    Daemon.run ~ring_capacity:8
      ~controls:[ (100, Daemon.Set_policy "LQD"); (200, Daemon.Resize_buffer 16) ]
      ~slots:300 ~model:(Model.Value_uniform config) ~policy:"MRD"
      ~ingest:(Daemon.Bank bank) ()
  in
  Alcotest.(check int) "all slots served" 300 report.Daemon.slots;
  Alcotest.(check int) "both controls applied" 2 report.Daemon.reconfigs;
  Alcotest.(check bool)
    (Option.value ~default:"conservation holds" report.Daemon.conservation_error)
    true report.Daemon.conservation_ok

let test_daemon_trace_ingest_bit_exact () =
  (* Arrivals offered by the daemon over a trace ingest are exactly the
     trace: same packet count, every slot served. *)
  let trace = Trace.record (proc_workload ~seed:23 ()) ~slots:200 in
  let compact = Trace.Compact.of_trace trace in
  let report =
    Daemon.run ~ring_capacity:4 ~model:(Model.Proc proc_config) ~policy:"NHST"
      ~ingest:(Daemon.Trace compact) ()
  in
  Alcotest.(check int) "slots from the trace" 200 report.Daemon.slots;
  Alcotest.(check int) "arrivals are the trace's" (Trace.arrivals trace)
    report.Daemon.arrivals;
  Alcotest.(check bool)
    (Option.value ~default:"conservation holds" report.Daemon.conservation_error)
    true report.Daemon.conservation_ok

(* --- the black box --- *)

(* The always-on flight ring changes nothing: a deterministic trace ingest
   produces the same counters with the ring on (default) and off. *)
let test_daemon_flight_zero_observer_effect () =
  let run flight_cap =
    let trace = Trace.record (proc_workload ~seed:23 ()) ~slots:200 in
    Daemon.run ~ring_capacity:4 ~flight_cap ~model:(Model.Proc proc_config)
      ~policy:"LWD"
      ~ingest:(Daemon.Trace (Trace.Compact.of_trace trace))
      ()
  in
  let off = run 0 and on = run 65536 in
  Alcotest.(check bool) "counters identical" true
    (off.Daemon.arrivals = on.Daemon.arrivals
    && off.Daemon.accepted = on.Daemon.accepted
    && off.Daemon.transmitted = on.Daemon.transmitted
    && off.Daemon.dropped = on.Daemon.dropped
    && off.Daemon.flushed = on.Daemon.flushed
    && off.Daemon.slots = on.Daemon.slots)

(* Trip a watchdog deliberately (an impossible p99 budget), and the daemon
   must dump the flight ring plus a state snapshot that certifies: the
   replayed window reconstructs exactly the counters the daemon snapshot
   recorded at trip time. *)
let test_daemon_trip_writes_certifiable_postmortem () =
  let bank =
    Mmpp_bank.create ~mmpp:(mmpp 10) (Model.Proc proc_config) ~load:2.0
      ~seed:9 ()
  in
  let base = Filename.temp_file "smbm_serve_pm" "" in
  let report =
    Daemon.run ~ring_capacity:8 ~telemetry:true ~p99_budget_us:1e-6
      ~stats_every:100 ~flight_cap:(1 lsl 17) ~postmortem:base ~slots:400
      ~model:(Model.Proc proc_config) ~policy:"LWD" ~ingest:(Daemon.Bank bank)
      ()
  in
  Alcotest.(check bool) "watchdog tripped" true report.Daemon.degraded;
  (match report.Daemon.postmortem with
  | None -> Alcotest.fail "no postmortem written"
  | Some b -> (
    Alcotest.(check string) "report carries the base" base b;
    let module PM = Smbm_forensics.Postmortem in
    match PM.load b with
    | Error e -> Alcotest.fail e
    | Ok (meta, trace) -> (
      Alcotest.(check string) "trigger" "health" meta.PM.reason;
      Alcotest.(check string) "model" "proc" meta.PM.model;
      Alcotest.(check string) "live policy" "LWD" meta.PM.policy;
      Alcotest.(check int) "nothing evicted" 0 meta.PM.evicted;
      Alcotest.(check bool) "health state captured" true
        (List.exists (fun (_, tripped) -> tripped) meta.PM.health);
      match PM.certify meta trace with
      | Ok (PM.Certified { slots; events; checked }) ->
        Alcotest.(check bool) "certified a real window" true
          (slots > 0 && events > 0 && checked >= 8)
      | Ok (PM.Window _) -> Alcotest.fail "unevicted dump not certified"
      | Error e -> Alcotest.failf "certify: %s" e)));
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ Smbm_forensics.Postmortem.trace_path base;
      Smbm_forensics.Postmortem.meta_path base; base ]

(* Only the first trigger dumps; a second trip must not overwrite the
   earliest evidence. *)
let test_daemon_postmortem_first_trigger_only () =
  let bank =
    Mmpp_bank.create ~mmpp:(mmpp 10) (Model.Proc proc_config) ~load:2.0
      ~seed:13 ()
  in
  let base = Filename.temp_file "smbm_serve_pm" "" in
  let report =
    Daemon.run ~ring_capacity:8 ~telemetry:true ~p99_budget_us:1e-6
      ~stats_every:50 ~flight_cap:(1 lsl 17) ~postmortem:base ~slots:300
      ~model:(Model.Proc proc_config) ~policy:"LQD" ~ingest:(Daemon.Bank bank)
      ()
  in
  (match report.Daemon.postmortem with
  | None -> Alcotest.fail "no postmortem written"
  | Some _ -> ());
  (match Smbm_forensics.Postmortem.load base with
  | Error e -> Alcotest.fail e
  | Ok (meta, _) ->
    (* The first evaluation boundary is the earliest the budget rule can
       trip; the snapshot must be from then, not from the end of the run. *)
    Alcotest.(check bool) "dumped at the first trip, kept" true
      (meta.Smbm_forensics.Postmortem.slot < 300));
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ Smbm_forensics.Postmortem.trace_path base;
      Smbm_forensics.Postmortem.meta_path base; base ]

let test_daemon_unknown_policy_rejected () =
  let bank = Mmpp_bank.create ~mmpp:(mmpp 5) (Model.Proc proc_config) ~load:1.0 ~seed:1 () in
  Alcotest.check_raises "unknown initial policy"
    (Invalid_argument "Daemon.run: unknown processing policy \"bogus\"")
    (fun () ->
      ignore
        (Daemon.run ~slots:1 ~model:(Model.Proc proc_config) ~policy:"bogus"
           ~ingest:(Daemon.Bank bank) ()))

let suite =
  [
    Alcotest.test_case "ring shed accounting" `Quick test_ring_shed_accounting;
    Alcotest.test_case "ring abort unblocks producer" `Quick
      test_ring_abort_unblocks_producer;
    Qc.to_alcotest prop_ring_transit_bit_identity;
    Alcotest.test_case "bank sharding deterministic" `Quick
      test_bank_sharding_deterministic;
    Alcotest.test_case "daemon live reconfiguration (proc)" `Quick
      test_daemon_reconfig_proc;
    Alcotest.test_case "daemon stop control" `Quick test_daemon_stop_control;
    Alcotest.test_case "daemon policy swap + resize (value)" `Quick
      test_daemon_value_swap;
    Alcotest.test_case "daemon trace ingest is bit-exact" `Quick
      test_daemon_trace_ingest_bit_exact;
    Alcotest.test_case "daemon rejects unknown initial policy" `Quick
      test_daemon_unknown_policy_rejected;
    Alcotest.test_case "daemon flight: zero observer effect" `Quick
      test_daemon_flight_zero_observer_effect;
    Alcotest.test_case "daemon trip writes certifiable postmortem" `Quick
      test_daemon_trip_writes_certifiable_postmortem;
    Alcotest.test_case "daemon postmortem: first trigger only" `Quick
      test_daemon_postmortem_first_trigger_only;
  ]
