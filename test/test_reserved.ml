open Smbm_core
open Smbm_sim

let decision = Alcotest.testable Decision.pp Decision.equal

let switch ?(buffer = 8) ~works ~lengths () =
  let config = Proc_config.make ~works ~buffer () in
  let sw = Proc_switch.create config in
  Array.iteri
    (fun dest n ->
      for _ = 1 to n do
        ignore (Proc_switch.accept sw ~dest)
      done)
    lengths;
  (config, sw)

let test_validation () =
  let config = Proc_config.contiguous ~k:4 ~buffer:8 () in
  (match P_reserved.make ~reserve:(-1) config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative reserve accepted");
  match P_reserved.make ~reserve:3 config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-committed reservations accepted"

let test_greedy_accept () =
  let config, sw = switch ~works:[| 1; 2 |] ~lengths:[| 1; 0 |] () in
  let p = P_reserved.make ~reserve:2 config in
  Alcotest.check decision "space free" Decision.Accept
    (Proc_policy.admit p sw ~dest:1)

let test_pool_user_evicted_for_reserved_arrival () =
  (* B = 4, reserve 1 each of 2 ports: Q1 holds all 4 slots (1 reserved + 3
     pool); an arrival for empty Q0 is inside its reservation and reclaims
     from Q1. *)
  let config, sw = switch ~buffer:4 ~works:[| 1; 2 |] ~lengths:[| 0; 4 |] () in
  let p = P_reserved.make ~reserve:1 config in
  Alcotest.check decision "reclaims reservation"
    (Decision.Push_out { victim = 1 })
    (Proc_policy.admit p sw ~dest:0)

let test_reserved_slots_never_stolen () =
  (* Both queues exactly at their reservations (2 + 2 = B): nobody is above
     reservation, so a pool arrival must be dropped, not steal reserved
     slots. *)
  let config, sw = switch ~buffer:4 ~works:[| 1; 2 |] ~lengths:[| 2; 2 |] () in
  let p = P_reserved.make ~reserve:2 config in
  Alcotest.check decision "no pool user to evict" Decision.Drop
    (Proc_policy.admit p sw ~dest:0)

let test_pool_arrival_evicts_largest_pool_user () =
  (* reserve 1; Q0 = 1 (no pool), Q1 = 2 (1 pool), Q2 = 3 (2 pool); full
     B = 6.  An arrival for Q1 (already above reservation) evicts from Q2,
     the largest pool user. *)
  let config, sw =
    switch ~buffer:6 ~works:[| 1; 2; 3 |] ~lengths:[| 1; 2; 3 |] ()
  in
  let p = P_reserved.make ~reserve:1 config in
  Alcotest.check decision "largest pool user"
    (Decision.Push_out { victim = 2 })
    (Proc_policy.admit p sw ~dest:1)

let test_own_queue_largest_pool_user_drops () =
  let config, sw =
    switch ~buffer:6 ~works:[| 1; 2; 3 |] ~lengths:[| 1; 1; 4 |] ()
  in
  let p = P_reserved.make ~reserve:1 config in
  (* Q2 with virtual add holds 4 pool slots, more than anyone: drop. *)
  Alcotest.check decision "own queue dominates pool" Decision.Drop
    (Proc_policy.admit p sw ~dest:2)

let prop_reserve_zero_is_lqd =
  QCheck2.Test.make ~name:"RSV(0) coincides with LQD" ~count:300
    QCheck2.Gen.(
      let* k = int_range 1 4 in
      let* buffer = int_range k 8 in
      let* fill = list_size (int_range 0 16) (int_range 0 (k - 1)) in
      let* dest = int_range 0 (k - 1) in
      pure (k, buffer, fill, dest))
    (fun (k, buffer, fill, dest) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let sw = Proc_switch.create config in
      List.iter
        (fun d ->
          if not (Proc_switch.is_full sw) then
            ignore (Proc_switch.accept sw ~dest:d))
        fill;
      Decision.equal
        (Proc_policy.admit (P_reserved.make ~reserve:0 config) sw ~dest)
        (Proc_policy.admit (P_lqd.make config) sw ~dest))

let prop_reservation_invariant_under_load =
  (* Driving RSV(r) with arbitrary traffic: whenever a queue is below its
     reservation, an arrival for it is never dropped. *)
  QCheck2.Test.make
    ~name:"an arrival inside its reservation is always admitted" ~count:200
    QCheck2.Gen.(
      let* k = int_range 2 4 in
      let* reserve = int_range 1 2 in
      let* buffer = int_range (k * 2) 12 in
      let* dests = list_size (int_range 1 40) (int_range 0 (k - 1)) in
      pure (k, reserve, buffer, dests))
    (fun (k, reserve, buffer, dests) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let policy = P_reserved.make ~reserve config in
      let inst, sw = Proc_engine.create config policy in
      let ok = ref true in
      List.iter
        (fun dest ->
          let below = Proc_switch.queue_length sw dest < reserve in
          let before = (Metrics.dropped inst.Instance.metrics) in
          inst.Instance.arrive (Smbm_core.Arrival.make ~dest ());
          let dropped = (Metrics.dropped inst.Instance.metrics) > before in
          if below && dropped then ok := false;
          inst.Instance.transmit ();
          inst.Instance.end_slot ())
        dests;
      !ok)

let test_bridges_nest_and_lqd_under_hotspot () =
  (* A hotspot floods port 0 while the other ports trickle: RSV keeps the
     trickle ports alive (like NEST) while lending the hot port the pool
     (like LQD).  Its throughput should be at least LQD's and NEST's under
     this load. *)
  let config = Proc_config.uniform ~n:4 ~work:2 ~buffer:16 () in
  let trace slot =
    let hot = List.init 6 (fun _ -> Arrival.make ~dest:0 ()) in
    let trickle =
      if slot mod 2 = 0 then
        [ Arrival.make ~dest:1 (); Arrival.make ~dest:2 (); Arrival.make ~dest:3 () ]
      else []
    in
    hot @ trickle
  in
  let run policy =
    let inst = Proc_engine.instance config policy in
    Experiment.run
      ~params:{ Experiment.slots = 3_000; flush_every = None; check_every = None }
      ~workload:(Smbm_traffic.Workload.of_fun trace)
      [ inst ];
    (Metrics.transmitted inst.Instance.metrics)
  in
  let rsv = run (P_reserved.make ~reserve:2 config) in
  let nest = run (P_nest.make config) in
  Alcotest.(check bool) "RSV at least NEST here" true (rsv >= nest)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "greedy accept" `Quick test_greedy_accept;
    Alcotest.test_case "reclaims reservation" `Quick
      test_pool_user_evicted_for_reserved_arrival;
    Alcotest.test_case "reserved slots never stolen" `Quick
      test_reserved_slots_never_stolen;
    Alcotest.test_case "pool arrival evicts largest pool user" `Quick
      test_pool_arrival_evicts_largest_pool_user;
    Alcotest.test_case "own queue dominates pool" `Quick
      test_own_queue_largest_pool_user_drops;
    Qc.to_alcotest prop_reserve_zero_is_lqd;
    Qc.to_alcotest prop_reservation_invariant_under_load;
    Alcotest.test_case "bridges NEST and LQD" `Quick
      test_bridges_nest_and_lqd_under_hotspot;
  ]
