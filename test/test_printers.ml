(* Smoke tests for every pretty-printer: they must produce non-empty,
   exception-free output on representative values (format-string bugs only
   surface at run time). *)

open Smbm_core
open Smbm_sim

let render pp v = Format.asprintf "%a" pp v

let nonempty name s =
  if String.length (String.trim s) = 0 then
    Alcotest.failf "%s printed nothing" name

let test_core_printers () =
  nonempty "Packet.Proc.pp"
    (render Packet.Proc.pp (Packet.Proc.make ~id:1 ~dest:0 ~work:3 ~arrival:2));
  nonempty "Packet.Value.pp"
    (render Packet.Value.pp (Packet.Value.make ~id:1 ~dest:0 ~value:3 ~arrival:2));
  nonempty "Arrival.pp" (render Arrival.pp (Arrival.make ~dest:1 ~value:2 ()));
  nonempty "Proc_config.pp"
    (render Proc_config.pp (Proc_config.contiguous ~k:3 ~buffer:6 ()));
  nonempty "Value_config.pp"
    (render Value_config.pp (Value_config.make ~ports:2 ~max_value:3 ~buffer:4 ()));
  List.iter
    (fun d -> nonempty "Decision.pp" (render Decision.pp d))
    [ Decision.Accept; Decision.Push_out { victim = 2 }; Decision.Drop ]

let test_prelude_printers () =
  let open Smbm_prelude in
  let stats = Running_stats.create () in
  nonempty "Running_stats.pp empty" (render Running_stats.pp stats);
  Running_stats.add stats 4.2;
  nonempty "Running_stats.pp" (render Running_stats.pp stats);
  let h = Histogram.create () in
  nonempty "Histogram.pp empty" (render Histogram.pp h);
  Histogram.add h 10.0;
  nonempty "Histogram.pp" (render Histogram.pp h)

let test_sim_printers () =
  let m = Metrics.create () in
  Metrics.record_arrival m;
  Metrics.record_arrival m;
  Metrics.record_arrival m;
  Metrics.record_accept m;
  Metrics.record_accept m;
  Metrics.record_drop m;
  nonempty "Metrics.pp" (render Metrics.pp m);
  let ports = Port_stats.create ~n:2 in
  Port_stats.record ports ~port:0 ~value:1;
  nonempty "Port_stats.pp" (render Port_stats.pp ports)

let test_traffic_printers () =
  let open Smbm_traffic in
  let trace =
    Trace.of_slots [| [ Arrival.make ~dest:0 () ]; [] |]
  in
  nonempty "Trace_stats.pp" (render Trace_stats.pp (Trace_stats.analyze trace))

let test_analysis_printers () =
  let open Smbm_analysis in
  let config = Proc_config.contiguous ~k:2 ~buffer:2 () in
  let greedy =
    Proc_policy.make ~name:"greedy" ~push_out:false (fun sw ~dest:_ ->
        if Proc_switch.is_full sw then Decision.Drop else Decision.Accept)
  in
  let r =
    Mapping_certifier.run ~config ~opponent:greedy
      ~trace:(fun slot -> if slot = 0 then [ Arrival.make ~dest:0 () ] else [])
      ~slots:3 ()
  in
  nonempty "Mapping_certifier.pp_report" (render Mapping_certifier.pp_report r)

let suite =
  [
    Alcotest.test_case "core printers" `Quick test_core_printers;
    Alcotest.test_case "prelude printers" `Quick test_prelude_printers;
    Alcotest.test_case "sim printers" `Quick test_sim_printers;
    Alcotest.test_case "traffic printers" `Quick test_traffic_printers;
    Alcotest.test_case "analysis printers" `Quick test_analysis_printers;
  ]
