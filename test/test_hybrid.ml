(* The combined work + value model (the paper's future-work direction):
   switch mechanics, the WVD candidate policy, and ground-truth ordering
   against the brute-force optimum. *)

open Smbm_core
open Smbm_traffic
open Smbm_hybrid

let decision = Alcotest.testable Decision.pp Decision.equal

let config ?(works = [| 1; 2; 3 |]) ?(max_value = 9) ?(buffer = 6) () =
  Hybrid_config.make
    ~proc:(Proc_config.make ~works ~buffer ())
    ~max_value

let fill sw packets =
  List.iter
    (fun (dest, value) -> ignore (Hybrid_switch.accept sw ~dest ~value))
    packets

(* --- switch mechanics --- *)

let test_switch_accounting () =
  let sw = Hybrid_switch.create (config ()) in
  fill sw [ (2, 5); (2, 1); (0, 9) ];
  Alcotest.(check int) "occupancy" 3 (Hybrid_switch.occupancy sw);
  Alcotest.(check int) "W_2" 6 (Hybrid_switch.queue_work sw 2);
  Alcotest.(check int) "V_2" 6 (Hybrid_switch.queue_value sw 2);
  Alcotest.(check (option int)) "tail value" (Some 1)
    (Hybrid_switch.tail_value sw 2);
  Hybrid_switch.check_invariants sw;
  let p = Hybrid_switch.push_out sw ~victim:2 in
  Alcotest.(check int) "tail evicted" 1 p.Hybrid_switch.value;
  Alcotest.(check int) "V_2 after" 5 (Hybrid_switch.queue_value sw 2);
  Hybrid_switch.check_invariants sw

let test_switch_transmission () =
  (* Port 2 (work 3) with speedup 1: its packet takes three phases; value
     counted once on completion. *)
  let sw = Hybrid_switch.create (config ()) in
  fill sw [ (2, 7) ];
  let value = ref 0 in
  for _ = 1 to 2 do
    ignore
      (Hybrid_switch.transmit_phase sw ~on_transmit:(fun p ->
           value := !value + p.Hybrid_switch.value))
  done;
  Alcotest.(check int) "not done yet" 0 !value;
  ignore
    (Hybrid_switch.transmit_phase sw ~on_transmit:(fun p ->
         value := !value + p.Hybrid_switch.value));
  Alcotest.(check int) "value on completion" 7 !value;
  Alcotest.(check int) "empty" 0 (Hybrid_switch.occupancy sw)

let test_switch_validation () =
  let sw = Hybrid_switch.create (config ~max_value:4 ()) in
  (match Hybrid_switch.accept sw ~dest:0 ~value:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range value accepted");
  match Hybrid_switch.push_out sw ~victim:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "push-out from empty queue"

(* --- policies --- *)

let full_switch packets =
  let cfg = config ~buffer:4 () in
  let sw = Hybrid_switch.create cfg in
  fill sw packets;
  (cfg, sw)

let test_wvd_prefers_work_heavy_cheap_queue () =
  (* Q1 (work 2): two value-9 packets, W=4 V=18, ratio 0.22;
     Q2 (work 3): two value-1 packets, W=6 V=2, ratio 3.
     WVD evicts from Q2 - lots of work, little value. *)
  let _, sw = full_switch [ (1, 9); (1, 9); (2, 1); (2, 1) ] in
  Alcotest.check decision "evict cheap heavy queue"
    (Decision.Push_out { victim = 2 })
    (Hybrid_policy.wvd.Hybrid_policy.admit sw ~dest:0 ~value:5);
  (* LWD, value-blind, agrees here (Q2 also has the most work)... *)
  Alcotest.check decision "LWD agrees on work alone"
    (Decision.Push_out { victim = 2 })
    (Hybrid_policy.lwd.Hybrid_policy.admit sw ~dest:0 ~value:5)

let test_wvd_differs_from_lwd () =
  (* Q1 (work 2): three value-1 packets, W=6 V=3, ratio 2;
     Q2 (work 3): one value-9 packet, W=3 V=9, ratio 1/3.
     LWD evicts from Q1 (most work) - and so does WVD; flip it:
     Q1: three value-9 (W=6, V=27, ratio 0.22);
     Q2: one value-1 (W=3, V=1, ratio 3).
     LWD still evicts Q1 (6 > 3); WVD evicts Q2. *)
  let _, sw = full_switch [ (1, 9); (1, 9); (1, 9); (2, 1) ] in
  Alcotest.check decision "LWD follows work"
    (Decision.Push_out { victim = 1 })
    (Hybrid_policy.lwd.Hybrid_policy.admit sw ~dest:0 ~value:5);
  Alcotest.check decision "WVD follows work-per-value"
    (Decision.Push_out { victim = 2 })
    (Hybrid_policy.wvd.Hybrid_policy.admit sw ~dest:0 ~value:5)

let test_mvd_tail_only () =
  (* Q1 holds values [9; 1] (tail 1), Q2 holds [5; 4] (tail 4): MVD may
     only evict tails; cheapest tail is Q1's 1. *)
  let _, sw = full_switch [ (1, 9); (1, 1); (2, 5); (2, 4) ] in
  Alcotest.check decision "cheapest tail"
    (Decision.Push_out { victim = 1 })
    (Hybrid_policy.mvd.Hybrid_policy.admit sw ~dest:0 ~value:8);
  Alcotest.check decision "no gain, drop" Decision.Drop
    (Hybrid_policy.mvd.Hybrid_policy.admit sw ~dest:0 ~value:1)

let test_registry () =
  let cfg = config () in
  Alcotest.(check int) "seven policies" 7
    (List.length (Hybrid_policy.all cfg));
  Alcotest.(check bool) "find WVD" true
    (Option.is_some (Hybrid_policy.find cfg "wvd"))

(* --- engine + exact optimum --- *)

let run_policy cfg trace ~drain policy =
  let inst = Hybrid_engine.instance cfg policy in
  Smbm_sim.Experiment.run
    ~params:
      {
        Smbm_sim.Experiment.slots = Array.length trace + drain;
        flush_every = None;
        check_every = Some 1;
      }
    ~workload:
      (Workload.of_fun (fun i -> if i < Array.length trace then trace.(i) else []))
    [ inst ];
  (Smbm_sim.Metrics.transmitted_value inst.Smbm_sim.Instance.metrics)

let test_exact_opt_known_case () =
  (* B = 1, two simultaneous arrivals: work-1/value-2 vs work-2/value-3,
     3 slots total: taking the value-2 then another value-2 next slot (4)
     beats holding the value-3 (3). *)
  let cfg = config ~works:[| 1; 2 |] ~buffer:1 () in
  let a = Arrival.make ~dest:0 ~value:2 () and b = Arrival.make ~dest:1 ~value:3 () in
  let trace = [| [ b; a ]; [ a ] |] in
  Alcotest.(check int) "exact value" 4 (Hybrid_engine.exact_opt cfg trace ~drain:1)

let prop_policies_below_exact =
  QCheck2.Test.make
    ~name:"hybrid: every policy <= brute-force optimum per trace" ~count:60
    QCheck2.Gen.(
      let* n = int_range 1 3 in
      let* works = array_size (pure n) (int_range 1 3) in
      let* buffer = int_range 1 4 in
      let* k = int_range 1 5 in
      let* pairs =
        list_size (int_range 1 4)
          (list_size (int_range 0 3)
             (pair (int_range 0 (n - 1)) (int_range 1 k)))
      in
      pure (works, buffer, k, pairs))
    (fun (works, buffer, k, pairs) ->
      let cfg =
        Hybrid_config.make
          ~proc:(Proc_config.make ~works ~buffer ())
          ~max_value:k
      in
      let trace =
        Array.of_list
          (List.map
             (List.map (fun (d, v) -> Arrival.make ~dest:d ~value:v ()))
             pairs)
      in
      let drain = buffer * 3 in
      let exact = Hybrid_engine.exact_opt cfg trace ~drain in
      List.for_all
        (fun policy -> run_policy cfg trace ~drain policy <= exact)
        (Hybrid_policy.all cfg))

let test_hybrid_regime_structure () =
  (* The combined model's empirical finding (documented in EXPERIMENTS.md):
     no naive single-number combination dominates.  With value
     anti-correlated to work (heavy ports carry cheap traffic):
     - at moderate congestion the value-blind LWD stays within a whisker of
       the best;
     - at extreme congestion MVD (keep the valuable tails) wins while the
       queue-aggregate WVD collapses into single-port monopolization. *)
  let cfg = config ~works:[| 1; 2; 4; 8 |] ~max_value:8 ~buffer:24 () in
  let module R = Smbm_prelude.Rng in
  let trace_at lambda =
    let rng = R.create ~seed:5 in
    Array.init 4_000 (fun _ ->
        List.init (R.poisson rng ~lambda) (fun _ ->
            let dest = R.int rng 4 in
            let value = 1 + R.int rng (9 - [| 1; 2; 4; 8 |].(dest)) in
            Arrival.make ~dest ~value ()))
  in
  let value_of trace policy = run_policy cfg trace ~drain:100 policy in
  (* Moderate congestion. *)
  let trace = trace_at 2.0 in
  let lwd = value_of trace Hybrid_policy.lwd in
  List.iter
    (fun (p : Hybrid_policy.t) ->
      if p.name <> "Greedy" && value_of trace p > lwd + (lwd / 20) then
        Alcotest.failf "%s beats LWD by >5%% at moderate congestion" p.name)
    (Hybrid_policy.all cfg);
  (* Extreme congestion. *)
  let trace = trace_at 8.0 in
  let lwd = value_of trace Hybrid_policy.lwd in
  let mvd = value_of trace Hybrid_policy.mvd in
  let wvd = value_of trace Hybrid_policy.wvd in
  Alcotest.(check bool) "MVD wins at extreme congestion" true (mvd > lwd);
  Alcotest.(check bool) "WVD collapses at extreme congestion" true (wvd < lwd)

let suite =
  [
    Alcotest.test_case "switch accounting" `Quick test_switch_accounting;
    Alcotest.test_case "switch transmission" `Quick test_switch_transmission;
    Alcotest.test_case "switch validation" `Quick test_switch_validation;
    Alcotest.test_case "WVD evicts cheap heavy queues" `Quick
      test_wvd_prefers_work_heavy_cheap_queue;
    Alcotest.test_case "WVD differs from LWD" `Quick test_wvd_differs_from_lwd;
    Alcotest.test_case "MVD restricted to tails" `Quick test_mvd_tail_only;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "exact optimum known case" `Quick
      test_exact_opt_known_case;
    Alcotest.test_case "hybrid regime structure" `Slow
      test_hybrid_regime_structure;
    Qc.to_alcotest prop_policies_below_exact;
  ]
