open Smbm_sim
open Smbm_par

(* Small enough to run many sequential/parallel pairs, large enough that the
   switches actually congest and the ratios are non-trivial. *)
let tiny_base =
  {
    Sweep.default_base with
    Sweep.k = 4;
    buffer = 16;
    load = 2.5;
    slots = 1_200;
    flush_every = Some 300;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 20 };
  }

let xs = [ 2; 4; 8 ]

(* Bit-identical means equality of the float's bit pattern, not an
   epsilon (and it keeps infinities comparable). *)
let exact_float =
  Alcotest.testable Fmt.float (fun a b ->
      Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let ratios = Alcotest.(list (pair string exact_float))

let check_outcome_equal msg (a : Sweep.outcome) (b : Sweep.outcome) =
  Alcotest.(check int) (msg ^ ": panel number") a.Sweep.panel.Sweep.number
    b.Sweep.panel.Sweep.number;
  Alcotest.(check (list int))
    (msg ^ ": xs")
    (List.map (fun (p : Sweep.point) -> p.Sweep.x) a.Sweep.points)
    (List.map (fun (p : Sweep.point) -> p.Sweep.x) b.Sweep.points);
  List.iter2
    (fun (pa : Sweep.point) (pb : Sweep.point) ->
      Alcotest.check ratios
        (Printf.sprintf "%s: ratios at x=%d" msg pa.Sweep.x)
        pa.Sweep.ratios pb.Sweep.ratios)
    a.Sweep.points b.Sweep.points

let test_run_panel_matches_sequential jobs () =
  let seq = Sweep.run_panel ~base:tiny_base ~xs 1 in
  let par = Par_sweep.run_panel ~jobs ~base:tiny_base ~xs 1 in
  check_outcome_equal (Printf.sprintf "jobs=%d" jobs) seq par

let test_run_panel_value_model () =
  (* Panel 7 exercises the value-model path (value = port). *)
  let seq = Sweep.run_panel ~base:tiny_base ~xs 7 in
  let par = Par_sweep.run_panel ~jobs:4 ~base:tiny_base ~xs 7 in
  check_outcome_equal "value model" seq par

let test_run_panels_matches_per_panel () =
  let numbers = [ 1; 4; 7 ] in
  let par = Par_sweep.run_panels ~jobs:4 ~base:tiny_base numbers in
  Alcotest.(check int) "one outcome per panel" (List.length numbers)
    (List.length par);
  List.iter2
    (fun n outcome ->
      (* run_panels uses the panels' default xs; so must the reference. *)
      let seq = Sweep.run_panel ~base:tiny_base n in
      check_outcome_equal (Printf.sprintf "panel %d" n) seq outcome)
    numbers par

let test_run_points_matches_sequential () =
  let seq =
    List.map
      (fun x ->
        (x, Sweep.run_point ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.B ~x ()))
      [ 8; 16; 32 ]
  in
  let par =
    Par_sweep.run_points ~jobs:3 ~base:tiny_base ~model:Sweep.Proc
      ~axis:Sweep.B ~xs:[ 8; 16; 32 ] ()
  in
  List.iter2
    (fun (xa, ra) (xb, rb) ->
      Alcotest.(check int) "x" xa xb;
      Alcotest.check ratios (Printf.sprintf "ratios at %d" xa) ra rb)
    seq par

let replicated =
  Alcotest.(list (pair string (triple exact_float exact_float int)))

let flatten_reps reps =
  List.map
    (fun (name, (r : Sweep.replicated)) ->
      (name, (r.Sweep.mean, r.Sweep.stddev, r.Sweep.runs)))
    reps

let test_replicated_matches_sequential () =
  let seeds = Par_sweep.split_seeds ~seed:tiny_base.Sweep.seed 5 in
  let seq =
    Sweep.run_point_replicated ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K
      ~x:4 ~seeds
  in
  let par =
    Par_sweep.run_point_replicated ~jobs:4 ~base:tiny_base ~model:Sweep.Proc
      ~axis:Sweep.K ~x:4 ~seeds ()
  in
  Alcotest.check replicated "replicates identical" (flatten_reps seq)
    (flatten_reps par)

let test_split_seeds_deterministic () =
  let a = Par_sweep.split_seeds ~seed:42 6 in
  let b = Par_sweep.split_seeds ~seed:42 6 in
  Alcotest.(check (list int)) "deterministic in seed" a b;
  let prefix = Par_sweep.split_seeds ~seed:42 3 in
  Alcotest.(check (list int))
    "prefix-stable as n grows" prefix
    (List.filteri (fun i _ -> i < 3) a);
  Alcotest.(check int) "all distinct" 6
    (List.length (List.sort_uniq compare a))

let test_replicated_empty_seeds () =
  Alcotest.check_raises "no seeds"
    (Invalid_argument "Par_sweep.run_point_replicated: no seeds") (fun () ->
      ignore
        (Par_sweep.run_point_replicated ~jobs:2 ~base:tiny_base
           ~model:Sweep.Proc ~axis:Sweep.K ~x:4 ~seeds:[] ()))

let suite =
  [
    Alcotest.test_case "run_panel = sequential (1 job)" `Slow
      (test_run_panel_matches_sequential 1);
    Alcotest.test_case "run_panel = sequential (2 jobs)" `Slow
      (test_run_panel_matches_sequential 2);
    Alcotest.test_case "run_panel = sequential (4 jobs)" `Slow
      (test_run_panel_matches_sequential 4);
    Alcotest.test_case "run_panel = sequential (value model)" `Slow
      test_run_panel_value_model;
    Alcotest.test_case "run_panels = per-panel run_panel" `Slow
      test_run_panels_matches_per_panel;
    Alcotest.test_case "run_points = sequential" `Slow
      test_run_points_matches_sequential;
    Alcotest.test_case "run_point_replicated = sequential" `Slow
      test_replicated_matches_sequential;
    Alcotest.test_case "split_seeds deterministic + distinct" `Quick
      test_split_seeds_deterministic;
    Alcotest.test_case "replicated rejects empty seeds" `Quick
      test_replicated_empty_seeds;
  ]
