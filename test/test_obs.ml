(* The observability layer: JSON codec, event round-trips, ring-buffer
   recording, the metrics registry, span nesting, and — the load-bearing
   property — trace determinism across job counts with zero observer
   effect on results. *)

open Smbm_obs
open Smbm_sim

(* --- Json --- *)

let test_json_obj_and_parse () =
  let line =
    Json.obj
      [
        ("ev", Json.Str "arrival");
        ("slot", Json.Int 7);
        ("ok", Json.Bool true);
        ("x", Json.Float 1.5);
      ]
  in
  match Json.parse_flat line with
  | Error msg -> Alcotest.fail msg
  | Ok fields ->
    Alcotest.(check int) "field count" 4 (List.length fields);
    Alcotest.(check bool) "ev" true (List.assoc "ev" fields = Json.Str "arrival");
    Alcotest.(check bool) "slot" true (List.assoc "slot" fields = Json.Int 7);
    Alcotest.(check bool) "ok" true (List.assoc "ok" fields = Json.Bool true);
    Alcotest.(check bool) "x" true (List.assoc "x" fields = Json.Float 1.5)

let test_json_escapes_round_trip () =
  let tricky = "a\"b\\c\nd\te\r" ^ String.make 1 '\x01' in
  let line = Json.obj [ ("s", Json.Str tricky) ] in
  match Json.parse_flat line with
  | Error msg -> Alcotest.fail msg
  | Ok [ ("s", Json.Str s) ] -> Alcotest.(check string) "escaped string" tricky s
  | Ok _ -> Alcotest.fail "unexpected shape"

let test_json_rejects_garbage () =
  let bad =
    [
      "";
      "{";
      "{}x";
      "{\"a\":1,\"a\":2}" (* duplicate key *);
      "{\"a\":{}}" (* nested *);
      "{\"a\":[1]}" (* array *);
      "{\"a\":}";
      "not json";
    ]
  in
  List.iter
    (fun s ->
      match Json.parse_flat s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    bad

(* --- Event --- *)

let all_kinds =
  [
    Event.Arrival { dest = 3 };
    Event.Accept { dest = 0 };
    Event.Push_out { victim = 2; dest = 5; lost = 3 };
    Event.Drop { dest = 1; value = 6 };
    Event.Transmit { dest = 4; value = 9; latency = 17 };
    Event.Transmit_bulk { dest = -1; count = 3; value = 12 };
    Event.Flush { count = 7 };
    Event.Slot_end { occupancy = 42 };
    Event.Reconfig { what = "policy"; target = "LQD" };
    Event.Reconfig { what = "buffer"; target = "128" };
    Event.Health { rule = "p99_slot_time"; tripped = true; reason = "over" };
    Event.Health { rule = "shed_rate"; tripped = false; reason = "recovered" };
    Event.Truncated { evicted = 19 };
  ]

let test_event_round_trip () =
  List.iter
    (fun kind ->
      let ev = Event.make ~src:"x=4/LWD" ~slot:123 kind in
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> Alcotest.(check bool) (Event.kind_name kind) true (ev = ev')
      | Error msg -> Alcotest.fail msg)
    all_kinds

let test_event_rejects_malformed () =
  let bad =
    [
      {|{"ev":"warp","slot":0,"src":"a"}|} (* unknown kind *);
      {|{"ev":"arrival","slot":0,"src":"a"}|} (* missing dest *);
      {|{"ev":"arrival","slot":-1,"src":"a","dest":0}|} (* negative slot *);
      {|{"ev":"arrival","slot":0,"src":"a","dest":0,"junk":1}|} (* extra *);
      {|{"ev":"arrival","slot":"0","src":"a","dest":0}|} (* ill-typed *);
      {|{"slot":0,"src":"a","dest":0}|} (* no ev *);
      {|{"ev":"health","slot":0,"src":"a","rule":"r","state":"meh","reason":"x"}|}
      (* bad health state *);
    ]
  in
  List.iter
    (fun s ->
      match Event.of_json s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %s" s))
    bad

(* --- Recorder --- *)

let test_recorder_eviction_at_capacity () =
  let r = Recorder.create ~cap:3 () in
  for slot = 0 to 9 do
    Recorder.record r ~slot ~who:"w" (Event.Arrival { dest = 0 })
  done;
  Alcotest.(check int) "length" 3 (Recorder.length r);
  Alcotest.(check int) "total" 10 (Recorder.total r);
  Alcotest.(check int) "dropped" 7 (Recorder.dropped r);
  (* Oldest first, and the survivors are the newest three. *)
  Alcotest.(check (list int)) "surviving slots" [ 7; 8; 9 ]
    (List.map (fun (e : Event.t) -> e.Event.slot) (Recorder.events r));
  (* dump prepends a truncation marker carrying the eviction count and the
     oldest surviving slot. *)
  (match Recorder.dump r with
  | meta :: rest ->
    Alcotest.(check bool) "truncated meta" true
      (meta.Event.kind = Event.Truncated { evicted = 7 });
    Alcotest.(check int) "meta slot = oldest survivor" 7 meta.Event.slot;
    Alcotest.(check bool) "dump tail = events" true (rest = Recorder.events r)
  | [] -> Alcotest.fail "empty dump");
  Recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Recorder.length r)

let test_recorder_scope_prefixes_src () =
  let r = Recorder.create ~scope:"x=8" ~cap:4 () in
  Recorder.record r ~slot:0 ~who:"LWD" (Event.Drop { dest = 1; value = 1 });
  match Recorder.events r with
  | [ e ] -> Alcotest.(check string) "src" "x=8/LWD" e.Event.src
  | _ -> Alcotest.fail "expected one event"

(* Wrap-around attribution across a clear: the truncation marker must
   describe only the post-clear life of the ring — eviction count reset,
   slot pointing at the new oldest survivor, no stale marker while the
   refilled ring still holds everything. *)
let test_recorder_truncation_after_clear () =
  let r = Recorder.create ~cap:4 () in
  for slot = 0 to 9 do
    Recorder.record r ~slot ~who:"w" (Event.Arrival { dest = 0 })
  done;
  Alcotest.(check int) "pre-clear dropped" 6 (Recorder.dropped r);
  Recorder.clear r;
  Alcotest.(check int) "cleared total" 0 (Recorder.total r);
  for slot = 100 to 102 do
    Recorder.record r ~slot ~who:"w" (Event.Arrival { dest = 0 })
  done;
  (* Under capacity again: a dump carries no marker at all. *)
  Alcotest.(check (list int)) "no marker under capacity" [ 100; 101; 102 ]
    (List.map (fun (e : Event.t) -> e.Event.slot) (Recorder.dump r));
  for slot = 103 to 105 do
    Recorder.record r ~slot ~who:"w" (Event.Arrival { dest = 0 })
  done;
  match Recorder.dump r with
  | meta :: rest ->
    Alcotest.(check bool) "post-clear eviction count" true
      (meta.Event.kind = Event.Truncated { evicted = 2 });
    Alcotest.(check int) "post-clear oldest survivor" 102 meta.Event.slot;
    Alcotest.(check (list int)) "post-clear survivors" [ 102; 103; 104; 105 ]
      (List.map (fun (e : Event.t) -> e.Event.slot) rest)
  | [] -> Alcotest.fail "empty dump"

(* --- Json floats: exact round-trip --- *)

let float_eq a b =
  (Float.is_nan a && Float.is_nan b) || Int64.bits_of_float a = Int64.bits_of_float b

let test_json_float_specials_round_trip () =
  List.iter
    (fun v ->
      let line = Json.obj [ ("x", Json.Float v) ] in
      match Json.parse_flat line with
      | Error msg -> Alcotest.failf "%s: %s" line msg
      | Ok [ ("x", Json.Float v') ] ->
        Alcotest.(check bool) (Printf.sprintf "%h via %s" v line) true
          (float_eq v v')
      | Ok _ -> Alcotest.failf "%s: unexpected shape" line)
    [
      0.0; -0.0; 1.5; -1.5; 0.1; infinity; neg_infinity; nan; 1e308; -1e308;
      4e-324 (* smallest subnormal *); max_float; min_float; 3.14159265358979312;
    ]

let prop_json_float_exact_round_trip =
  Qc.to_alcotest
    (QCheck2.Test.make ~name:"json float round-trips bit-exactly" ~count:1000
       QCheck2.Gen.(
         oneof
           [
             float;
             oneofl [ 0.0; -0.0; infinity; neg_infinity; nan; 1e22; 1e-7 ];
             (* full-precision doubles: 17 significant digits needed *)
             map Int64.float_of_bits int64;
           ])
       (fun v ->
         let line = Json.obj [ ("x", Json.Float v) ] in
         match Json.parse_flat line with
         | Ok [ ("x", Json.Float v') ] -> float_eq v v'
         | Ok _ | Error _ -> false))

(* --- Registry --- *)

let test_registry_counters_and_snapshot () =
  let reg = Registry.create () in
  let c = Registry.counter reg "hits" in
  Registry.incr c;
  Registry.add c 4;
  Alcotest.(check int) "counter" 5 (Registry.counter_value c);
  (* Re-registration returns the same instrument. *)
  Registry.incr (Registry.counter reg "hits");
  Alcotest.(check int) "shared" 6 (Registry.counter_value c);
  (match Registry.add c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative counter add accepted");
  (match Registry.gauge reg "hits" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  let h = Registry.histogram reg "lat" in
  Registry.observe h 2.0;
  Registry.observe h 4.0;
  let names = List.map fst (Registry.snapshot reg) in
  Alcotest.(check (list string)) "sorted names" [ "hits"; "lat" ] names;
  let lines = Registry.to_jsonl ~labels:[ ("run", "t") ] reg in
  Alcotest.(check int) "jsonl lines" 2 (List.length lines);
  List.iter
    (fun line ->
      match Smbm_obs.Json.parse_flat line with
      | Ok fields ->
        Alcotest.(check bool) "label present" true
          (List.assoc "run" fields = Smbm_obs.Json.Str "t")
      | Error msg -> Alcotest.fail msg)
    lines

let test_registry_summary_edge_cases () =
  (* Histogram summaries at the degenerate sizes: an empty histogram
     reports all-zero quantiles, a single observation reports itself as
     every quantile (not an interpolation below it). *)
  let reg = Registry.create () in
  let h = Registry.histogram reg "lat" in
  (match Registry.snapshot reg with
  | [ ("lat", Registry.Summary { n; p50; p95; p99; max; _ }) ] ->
    Alcotest.(check int) "empty n" 0 n;
    List.iter
      (fun (label, v) -> Alcotest.(check (float 1e-9)) label 0.0 v)
      [ ("empty p50", p50); ("empty p95", p95); ("empty p99", p99);
        ("empty max", max) ]
  | _ -> Alcotest.fail "unexpected empty snapshot shape");
  Registry.observe h 42.0;
  match Registry.snapshot reg with
  | [ ("lat", Registry.Summary { n; mean; p50; p95; p99; max; _ }) ] ->
    Alcotest.(check int) "single n" 1 n;
    List.iter
      (fun (label, v) -> Alcotest.(check (float 1e-9)) label 42.0 v)
      [ ("single mean", mean); ("single p50", p50); ("single p95", p95);
        ("single p99", p99); ("single max", max) ]
  | _ -> Alcotest.fail "unexpected single snapshot shape"

let test_registry_snapshot_buckets () =
  (* Summaries carry the histogram's full bucket shape, and the JSONL line
     adds the bucket fields without disturbing the old quantile keys. *)
  let reg = Registry.create () in
  let h = Registry.histogram reg "lat" in
  List.iter (Registry.observe h) [ 2.0; 4.0; 4.0; 900.0 ];
  (match Registry.snapshot reg with
  | [ ("lat", Registry.Summary { n; buckets_per_decade; buckets; _ }) ] ->
    let hist = Registry.histogram_values h in
    Alcotest.(check int) "n" 4 n;
    Alcotest.(check int) "bpd matches the histogram"
      (Smbm_prelude.Histogram.buckets_per_decade hist)
      buckets_per_decade;
    Alcotest.(check (list (pair int int)))
      "buckets match the histogram"
      (Smbm_prelude.Histogram.buckets hist)
      buckets;
    Alcotest.(check int) "bucket counts sum to n" n
      (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets)
  | _ -> Alcotest.fail "unexpected snapshot shape");
  match Registry.to_jsonl reg with
  | [ line ] -> (
    match Json.parse_flat line with
    | Ok fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "count"; "mean"; "p50"; "p95"; "p99"; "max"; "buckets_per_decade";
          "buckets" ];
      (match List.assoc "buckets" fields with
      | Json.Str s ->
        Alcotest.(check bool) "index:count pairs" true (String.contains s ':')
      | _ -> Alcotest.fail "buckets not string-encoded")
    | Error msg -> Alcotest.fail msg)
  | lines ->
    Alcotest.fail (Printf.sprintf "expected 1 line, got %d" (List.length lines))

(* --- Rolling --- *)

let test_rolling_window_expiry () =
  (* All clocks injected: a 10s window over 10 one-second cells.  Writes
     land in the cell of their instant and expire exactly when the window
     slides past that cell — no wall-clock reads anywhere. *)
  let r = Rolling.create ~window:10.0 ~buckets:10 () in
  let c = Rolling.counter r "slots" in
  Rolling.incr c ~now:100.0;
  Rolling.add c ~now:104.9 3;
  Rolling.incr c ~now:109.9;
  Alcotest.(check int) "all live inside the window" 5
    (Rolling.total c ~now:109.9);
  Alcotest.(check int) "oldest cell expires at the boundary" 4
    (Rolling.total c ~now:110.0);
  Alcotest.(check int) "mid cell expires in turn" 1
    (Rolling.total c ~now:115.0);
  (* A jump far past the window wipes everything in O(buckets). *)
  Alcotest.(check int) "all expired after a jump" 0
    (Rolling.total c ~now:1_000_000.0);
  (* A clock running backwards is benign: the write lands in the freshest
     cell instead of resurrecting an old one. *)
  Rolling.incr c ~now:999_999.0;
  Alcotest.(check int) "backwards write still counted" 1
    (Rolling.total c ~now:1_000_000.0);
  match Rolling.create ~window:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window <= 0 accepted"

let test_rolling_rate_and_span () =
  let r = Rolling.create ~window:10.0 ~buckets:10 () in
  let c = Rolling.counter r "x" in
  Rolling.add c ~now:100.0 8;
  (* The denominator clamps to one cell width at startup (finite early
     rates), grows with coverage, and caps at the window. *)
  Alcotest.(check (float 1e-9)) "startup span" 1.0 (Rolling.span r ~now:100.0);
  Alcotest.(check (float 1e-9)) "startup rate" 8.0 (Rolling.rate c ~now:100.0);
  Alcotest.(check (float 1e-9)) "growing span" 5.0 (Rolling.span r ~now:105.0);
  Alcotest.(check (float 1e-9)) "rate over covered seconds" 1.6
    (Rolling.rate c ~now:105.0);
  Alcotest.(check (float 1e-9)) "span caps at the window" 10.0
    (Rolling.span r ~now:200.0);
  Alcotest.(check (float 1e-9)) "stale data expired from the rate" 0.0
    (Rolling.rate c ~now:200.0)

let test_rolling_histogram_window () =
  let r = Rolling.create ~window:10.0 ~buckets:10 () in
  let h = Rolling.histogram r "slot_us" in
  List.iter (Rolling.observe h ~now:100.0) [ 10.0; 10.0; 10.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Rolling.hist_count h ~now:100.0);
  let p50 = Rolling.quantile h ~now:100.0 0.5 in
  Alcotest.(check bool) "p50 sits in the 10us bucket" true
    (p50 >= 8.0 && p50 <= 14.0);
  Rolling.observe h ~now:108.0 1000.0;
  (* Sliding past the t=100 cell leaves only the late observation, and the
     windowed quantile follows the surviving mass. *)
  Alcotest.(check int) "expired down to the late cell" 1
    (Rolling.hist_count h ~now:111.0);
  Alcotest.(check bool) "p50 follows the window" true
    (Rolling.quantile h ~now:111.0 0.5 > 500.0);
  Alcotest.(check int) "empty after the window passes" 0
    (Rolling.hist_count h ~now:200.0);
  Alcotest.(check (float 1e-9)) "empty quantile" 0.0
    (Rolling.quantile h ~now:200.0 0.5)

let test_rolling_delta_rates () =
  (* Two cumulative registry snapshots dt apart diff into counter rates and
     a windowed distribution — the stats-socket client's whole trick. *)
  let reg = Registry.create () in
  let c = Registry.counter reg "arrivals" in
  let g = Registry.gauge reg "occupancy" in
  let h = Registry.histogram reg "lat" in
  Registry.add c 100;
  Registry.set g 5.0;
  List.iter (Registry.observe h) [ 10.0; 10.0 ];
  let earlier = Registry.snapshot reg in
  Registry.add c 50;
  Registry.set g 9.0;
  List.iter (Registry.observe h) [ 1000.0; 1000.0; 1000.0 ];
  let later = Registry.snapshot reg in
  let d = Rolling.Delta.diff ~dt:5.0 ~earlier ~later in
  Alcotest.(check (option int)) "counter delta" (Some 50)
    (Rolling.Delta.delta d "arrivals");
  Alcotest.(check (option (float 1e-9))) "counter rate" (Some 10.0)
    (Rolling.Delta.rate d "arrivals");
  Alcotest.(check (option int)) "gauges are skipped" None
    (Rolling.Delta.delta d "occupancy");
  Alcotest.(check (option int)) "interval observation count" (Some 3)
    (Rolling.Delta.hist_count d "lat");
  (match Rolling.Delta.quantile d "lat" 0.5 with
  | Some q ->
    (* The cumulative p50 is ~10us; the interval's is all new mass. *)
    Alcotest.(check bool) "interval median is the new mass" true (q > 500.0)
  | None -> Alcotest.fail "no interval quantile");
  (* An instrument missing from [earlier] diffs against zero. *)
  let d0 = Rolling.Delta.diff ~dt:2.0 ~earlier:[] ~later in
  Alcotest.(check (option int)) "missing earlier diffs vs zero" (Some 150)
    (Rolling.Delta.delta d0 "arrivals");
  (* A racy regression clamps to zero rather than going negative. *)
  let dneg = Rolling.Delta.diff ~dt:2.0 ~earlier:later ~later:earlier in
  Alcotest.(check (option int)) "regression clamps" (Some 0)
    (Rolling.Delta.delta dneg "arrivals");
  Alcotest.(check (option int)) "bucket regression clamps" (Some 0)
    (Rolling.Delta.hist_count dneg "lat");
  match Rolling.Delta.diff ~dt:0.0 ~earlier ~later with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dt <= 0 accepted"

(* --- Span --- *)

let test_span_nesting_and_report () =
  let spans = Span.create () in
  let result =
    Span.with_span spans "outer" (fun () ->
        Span.with_span spans "inner" (fun () -> 7) + 1)
  in
  Alcotest.(check int) "result" 8 result;
  (match Span.records spans with
  | [ inner; outer ] ->
    (* Inner completes first and carries the greater depth. *)
    Alcotest.(check string) "inner name" "inner" inner.Span.name;
    Alcotest.(check int) "inner depth" 1 inner.Span.depth;
    Alcotest.(check string) "outer name" "outer" outer.Span.name;
    Alcotest.(check int) "outer depth" 0 outer.Span.depth;
    Alcotest.(check bool) "outer wall covers inner" true
      (outer.Span.wall >= inner.Span.wall)
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length rs)));
  (* A raising thunk still records its span. *)
  (match Span.with_span spans "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "raise recorded" 3 (List.length (Span.records spans));
  let report = Format.asprintf "%a" Span.report spans in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report mentions outer" true (contains report "outer");
  (* The aggregate view groups records by name with exact counts. *)
  (match Span.aggregate spans with
  | [ ("boom", boom); ("inner", inner); ("outer", outer) ] ->
    List.iter
      (fun (label, (a : Span.agg)) -> Alcotest.(check int) label 1 a.Span.count)
      [ ("boom count", boom); ("inner count", inner); ("outer count", outer) ];
    Alcotest.(check bool) "outer wall covers inner" true
      (outer.Span.wall >= inner.Span.wall);
    Alcotest.(check (float 1e-9)) "mean of one is the wall" outer.Span.wall
      outer.Span.wall_mean
  | aggs ->
    Alcotest.fail
      (Printf.sprintf "expected 3 aggregates, got %d" (List.length aggs)))

let test_progress_bar () =
  Alcotest.(check string) "empty" "[..........]" (Progress.bar ~width:10 0.0);
  Alcotest.(check string) "full" "[##########]" (Progress.bar ~width:10 1.0);
  Alcotest.(check string) "half" "[#####.....]" (Progress.bar ~width:10 0.5);
  Alcotest.(check string) "clamped below" "[..........]"
    (Progress.bar ~width:10 (-3.0));
  Alcotest.(check string) "clamped above" "[##########]"
    (Progress.bar ~width:10 7.0)

(* --- Engine-level: events match metrics, recording changes nothing --- *)

let small_base =
  {
    Sweep.default_base with
    Sweep.k = 4;
    buffer = 8;
    slots = 400;
    flush_every = Some 100;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 10 };
  }

let count kind_name events =
  List.length
    (List.filter
       (fun (e : Event.t) -> Event.kind_name e.Event.kind = kind_name)
       events)

let test_engine_events_match_metrics () =
  let config = Smbm_core.Proc_config.contiguous ~k:4 ~buffer:8 () in
  let recorder = Recorder.create ~cap:1_000_000 () in
  let inst =
    Proc_engine.instance ~recorder config (Smbm_core.P_lwd.make config)
  in
  let workload =
    Smbm_traffic.Scenario.proc_workload
      ~mmpp:small_base.Sweep.mmpp ~config ~load:2.0 ~seed:11 ()
  in
  Experiment.run
    ~params:{ Experiment.slots = 400; flush_every = Some 100; check_every = None }
    ~workload [ inst ];
  let m = inst.Instance.metrics in
  let events = Recorder.events recorder in
  Alcotest.(check int) "arrivals" (Metrics.arrivals m) (count "arrival" events);
  Alcotest.(check int) "accepts" (Metrics.accepted m) (count "accept" events);
  Alcotest.(check int) "drops" (Metrics.dropped m) (count "drop" events);
  Alcotest.(check int) "push-outs" (Metrics.pushed_out m)
    (count "push_out" events);
  Alcotest.(check int) "transmits" (Metrics.transmitted m)
    (count "transmit" events);
  Alcotest.(check int) "slot ends" 400 (count "slot_end" events)

let test_traced_panel_matches_untraced_and_jobs () =
  let xs = [ 2; 4 ] in
  let plain = Sweep.run_panel ~base:small_base ~xs 4 in
  let t1 =
    Smbm_par.Par_sweep.run_panel_traced ~jobs:1 ~base:small_base ~xs 4
  in
  let t4 =
    Smbm_par.Par_sweep.run_panel_traced ~jobs:4 ~base:small_base ~xs 4
  in
  (* Zero observer effect: tracing changes no ratio. *)
  Alcotest.(check bool) "outcome = untraced" true
    (t1.Smbm_par.Par_sweep.outcome = plain);
  (* Bit-identical trace for any job count. *)
  let render tr =
    String.concat "\n"
      (List.map Event.to_json tr.Smbm_par.Par_sweep.events)
  in
  Alcotest.(check bool) "events j1 = j4" true (render t1 = render t4);
  Alcotest.(check int) "same eviction" t1.Smbm_par.Par_sweep.dropped_events
    t4.Smbm_par.Par_sweep.dropped_events;
  Alcotest.(check bool) "trace non-empty" true
    (t1.Smbm_par.Par_sweep.events <> [])

(* --- Sink --- *)

let test_sink_file_and_null () =
  Alcotest.(check bool) "null is null" true (Sink.is_null Sink.null);
  Sink.line Sink.null "dropped";
  let path = Filename.temp_file "smbm_obs" ".jsonl" in
  let sink = Sink.file path in
  Sink.event sink (Event.make ~src:"s" ~slot:0 (Event.Arrival { dest = 0 }));
  Sink.line sink "tail";
  Sink.close sink;
  Sink.close sink (* idempotent *);
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "event line parses" true
    (match Event.of_json l1 with Ok _ -> true | Error _ -> false);
  Alcotest.(check string) "raw line" "tail" l2;
  match Sink.line sink "after close" with
  | exception _ -> ()
  | () -> Alcotest.fail "write after close accepted"

let test_sink_open_error_is_typed () =
  (* A bad path is a value, not an exception. *)
  match Sink.open_file "/nonexistent-dir-smbm/metrics.jsonl" with
  | Ok _ -> Alcotest.fail "opened a file under a nonexistent directory"
  | Error e ->
    Alcotest.(check bool) "op is open" true (e.Sink.op = `Open);
    Alcotest.(check string)
      "path reported" "/nonexistent-dir-smbm/metrics.jsonl" e.Sink.path;
    Alcotest.(check bool) "message non-empty" true (e.Sink.message <> "");
    Alcotest.(check bool) "printable" true (Sink.error_to_string e <> "")

let test_sink_write_failure_latches () =
  (* Write through a channel whose descriptor was closed under the sink:
     the first failure latches, later writes are silent no-ops, and
     close_result reports the failure. *)
  let path = Filename.temp_file "smbm_obs" ".jsonl" in
  let oc = open_out path in
  let sink = Sink.of_channel oc in
  Sink.line sink (String.make 100_000 'x');
  close_out oc;
  Sink.line sink (String.make 100_000 'y');
  Sink.line sink "after failure";
  (* no raise *)
  (match Sink.failure sink with
  | None -> Alcotest.fail "expected a latched write failure"
  | Some e ->
    Alcotest.(check bool) "op is write" true (e.Sink.op = `Write);
    Alcotest.(check string) "borrowed channel path" "<channel>" e.Sink.path);
  (match Sink.close_result sink with
  | Ok () -> Alcotest.fail "close_result must surface the latched failure"
  | Error _ -> ());
  Sys.remove path;
  (* The null sink never fails. *)
  Sink.line Sink.null "whatever";
  Alcotest.(check bool) "null never fails" true (Sink.failure Sink.null = None);
  Alcotest.(check bool) "null closes clean" true
    (Sink.close_result Sink.null = Ok ())

let test_sink_open_file_ok_round_trip () =
  let path = Filename.temp_file "smbm_obs" ".jsonl" in
  (match Sink.open_file path with
  | Error e -> Alcotest.fail (Sink.error_to_string e)
  | Ok sink ->
    Sink.line sink "one";
    Alcotest.(check bool) "healthy" true (Sink.failure sink = None);
    (match Sink.close_result sink with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Sink.error_to_string e));
    let ic = open_in path in
    let l = input_line ic in
    close_in ic;
    Alcotest.(check string) "content" "one" l);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "json object round-trip" `Quick test_json_obj_and_parse;
    Alcotest.test_case "json escape round-trip" `Quick
      test_json_escapes_round_trip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "event codec round-trip" `Quick test_event_round_trip;
    Alcotest.test_case "event rejects malformed" `Quick
      test_event_rejects_malformed;
    Alcotest.test_case "ring buffer eviction" `Quick
      test_recorder_eviction_at_capacity;
    Alcotest.test_case "recorder scoping" `Quick test_recorder_scope_prefixes_src;
    Alcotest.test_case "recorder truncation after clear" `Quick
      test_recorder_truncation_after_clear;
    Alcotest.test_case "json float specials round-trip" `Quick
      test_json_float_specials_round_trip;
    prop_json_float_exact_round_trip;
    Alcotest.test_case "registry" `Quick test_registry_counters_and_snapshot;
    Alcotest.test_case "registry summary edge cases" `Quick
      test_registry_summary_edge_cases;
    Alcotest.test_case "registry snapshots carry buckets" `Quick
      test_registry_snapshot_buckets;
    Alcotest.test_case "rolling window expiry" `Quick test_rolling_window_expiry;
    Alcotest.test_case "rolling rate and span" `Quick test_rolling_rate_and_span;
    Alcotest.test_case "rolling histogram quantiles" `Quick
      test_rolling_histogram_window;
    Alcotest.test_case "rolling delta rates" `Quick test_rolling_delta_rates;
    Alcotest.test_case "span nesting" `Quick test_span_nesting_and_report;
    Alcotest.test_case "progress bar" `Quick test_progress_bar;
    Alcotest.test_case "engine events match metrics" `Quick
      test_engine_events_match_metrics;
    Alcotest.test_case "traced panel: no observer effect, j1 = j4" `Slow
      test_traced_panel_matches_untraced_and_jobs;
    Alcotest.test_case "sink" `Quick test_sink_file_and_null;
    Alcotest.test_case "sink open error is typed" `Quick
      test_sink_open_error_is_typed;
    Alcotest.test_case "sink write failure latches" `Quick
      test_sink_write_failure_latches;
    Alcotest.test_case "sink open_file round-trip" `Quick
      test_sink_open_file_ok_round_trip;
  ]
