open Smbm_par

(* A little CPU noise so worker scheduling actually scrambles completion
   order and order preservation is a real claim, not an accident. *)
let busy_work x =
  let rng = Smbm_prelude.Rng.create ~seed:x in
  let n = 1 + Smbm_prelude.Rng.int rng 5_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    incr acc
  done;
  !acc |> ignore

let test_map_order jobs () =
  Pool.with_pool ~jobs (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys =
        Pool.map pool
          (fun x ->
            busy_work x;
            x * x)
          xs
      in
      Alcotest.(check (list int)) "squares in order" (List.map (fun x -> x * x) xs) ys)

let test_mapi_indices () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = [ 'a'; 'b'; 'c'; 'd'; 'e' ] in
      let ys = Pool.mapi pool (fun i c -> (i, c)) xs in
      Alcotest.(check (list (pair int char)))
        "index matches position"
        [ (0, 'a'); (1, 'b'); (2, 'c'); (3, 'd'); (4, 'e') ]
        ys)

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map pool succ [ 7 ]))

let test_negative_jobs () =
  Alcotest.check_raises "jobs < 0"
    (Invalid_argument "Pool.create: jobs must be non-negative") (fun () ->
      ignore (Pool.create ~jobs:(-1) ()))

let test_map_reduce () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 20 (fun i -> i + 1) in
      (* Non-commutative reduce: order of combination is observable. *)
      let s =
        Pool.map_reduce pool ~map:string_of_int
          ~reduce:(fun acc x -> acc ^ "," ^ x)
          ~init:"" xs
      in
      let expected =
        List.fold_left
          (fun acc x -> acc ^ "," ^ x)
          ""
          (List.map string_of_int xs)
      in
      Alcotest.(check string) "fold in submission order" expected s)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map pool
           (fun x ->
             busy_work x;
             if x mod 10 = 3 then raise (Boom x) else x)
           (List.init 50 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        (* Earliest failing submission wins, deterministically. *)
        Alcotest.(check int) "first failing task's exception" 3 x);
      (* The pool survives a failed batch. *)
      let ys = Pool.map pool succ [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool usable after failure" [ 2; 3; 4 ] ys)

let test_progress_counter () =
  let ticks = Atomic.make 0 in
  Pool.with_pool ~on_tick:(fun _ -> Atomic.incr ticks) ~jobs:2 (fun pool ->
      ignore (Pool.map pool succ (List.init 10 Fun.id));
      Alcotest.(check int) "completed counts tasks" 10 (Pool.completed pool);
      ignore (Pool.map pool succ (List.init 5 Fun.id));
      Alcotest.(check int) "completed accumulates" 15 (Pool.completed pool);
      Alcotest.(check int) "one tick per task" 15 (Atomic.get ticks))

let test_inline_pool_ticks_in_order () =
  (* jobs:0 runs on the caller: ticks arrive strictly in submission order. *)
  let seen = ref [] in
  Pool.with_pool ~on_tick:(fun n -> seen := n :: !seen) ~jobs:0 (fun pool ->
      Alcotest.(check int) "no workers" 0 (Pool.jobs pool);
      ignore (Pool.map pool succ [ 10; 20; 30 ]));
  Alcotest.(check (list int)) "ordered ticks" [ 3; 2; 1 ] !seen

let test_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  let ys = Pool.map pool succ [ 1; 2 ] in
  Alcotest.(check (list int)) "works before shutdown" [ 2; 3 ] ys;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool: pool has been shut down") (fun () ->
      ignore (Pool.map pool succ [ 1 ]))

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one job" true (Pool.default_jobs () >= 1)

let test_shutdown_under_inflight_failure () =
  (* Shutdown straight after a batch that threw mid-flight: the failed
     batch must have fully drained (every task ran and was counted, the
     failing ones included), the workers must still be joinable, and the
     pool must refuse further work — no worker may die or wedge holding
     the queue. *)
  let pool = Pool.create ~jobs:4 () in
  (match
     Pool.map pool
       (fun x ->
         busy_work x;
         if x mod 8 = 7 then raise (Boom x) else x)
       (List.init 32 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> Alcotest.(check int) "earliest culprit" 7 x);
  Alcotest.(check int) "failed batch fully drained" 32 (Pool.completed pool);
  Pool.shutdown pool;
  (* joins all 4 domains *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool: pool has been shut down") (fun () ->
      ignore (Pool.map pool succ [ 1 ]))

let test_with_pool_shuts_down_on_exception () =
  (* with_pool's cleanup runs on the exception path: the task's exception
     (not a shutdown artifact) reaches the caller, and the pool it leaked
     is already shut down behind it. *)
  let leaked = ref None in
  (match
     Pool.with_pool ~jobs:2 (fun pool ->
         leaked := Some pool;
         ignore
           (Pool.map pool (fun x -> if x = 1 then raise (Boom x) else x)
              [ 0; 1; 2 ]))
   with
  | () -> Alcotest.fail "expected Boom through with_pool"
  | exception Boom x -> Alcotest.(check int) "task exception propagated" 1 x);
  match !leaked with
  | None -> Alcotest.fail "with_pool never ran its body"
  | Some pool ->
    Alcotest.check_raises "pool shut down by with_pool"
      (Invalid_argument "Pool: pool has been shut down") (fun () ->
        ignore (Pool.map pool succ [ 1 ]))

let suite =
  [
    Alcotest.test_case "map order, inline (0 jobs)" `Quick (test_map_order 0);
    Alcotest.test_case "map order, 1 job" `Quick (test_map_order 1);
    Alcotest.test_case "map order, 4 jobs" `Quick (test_map_order 4);
    Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
    Alcotest.test_case "empty and singleton batches" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "negative jobs rejected" `Quick test_negative_jobs;
    Alcotest.test_case "map_reduce folds in order" `Quick test_map_reduce;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "progress counter" `Quick test_progress_counter;
    Alcotest.test_case "inline pool ticks in order" `Quick
      test_inline_pool_ticks_in_order;
    Alcotest.test_case "graceful, idempotent shutdown" `Quick test_shutdown;
    Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_positive;
    Alcotest.test_case "shutdown under in-flight failure" `Quick
      test_shutdown_under_inflight_failure;
    Alcotest.test_case "with_pool shuts down on exception" `Quick
      test_with_pool_shuts_down_on_exception;
  ]
