(* Executable consequences of Theorem 7: for ANY opponent algorithm and any
   trace, the opponent's cumulative transmissions never exceed twice LWD's,
   at every slot (any prefix of the trace is itself a trace, and every
   algorithm is dominated by the prefix-optimal offline algorithm, which the
   paper's mapping routine bounds by 2 x LWD). *)

open Smbm_core
open Smbm_traffic
open Smbm_sim

let certify ~config ~trace ~slots ~opponent =
  Competitive_check.certify_lwd ~config
    ~workload:(Workload.of_fun (fun i -> if i < Array.length trace then trace.(i) else []))
    ~slots ~opponent ()

let test_certificate_against_all_policies_mmpp () =
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  List.iter
    (fun opponent ->
      let workload =
        Scenario.proc_workload
          ~mmpp:{ Scenario.default_mmpp with sources = 50 }
          ~config ~load:2.5 ~seed:5 ()
      in
      let outcome =
        Competitive_check.certify_lwd ~config ~workload ~slots:5_000
          ~flush_every:500 ~opponent ()
      in
      if outcome.Competitive_check.violations > 0 then
        Alcotest.failf "%s violated the 2x prefix bound at slot %d"
          opponent.Proc_policy.name
          (Option.get outcome.Competitive_check.first_violation))
    (Policies.proc_extended config)

let test_certificate_on_lwd_lower_bound_trace () =
  (* The Theorem 6 construction is the worst known trace for LWD: even
     there the scripted OPT stays within the 2x envelope (measured ~4/3). *)
  let open Smbm_lowerbounds in
  let m = Lb_lwd.measure ~buffer:600 ~episodes:4 () in
  Alcotest.(check bool) "within the competitive envelope" true
    (m.Runner.ratio < 2.0)

let test_lqd_fails_certification_on_thm4_trace () =
  (* Negative control: LQD is NOT 2-competitive under heterogeneous
     processing.  Certifying LQD (as the "policy") against the Theorem 4
     scripted OPT on the Theorem 4 trace must produce violations. *)
  let k = 64 and buffer = 1024 in
  let config = Proc_config.contiguous ~k ~buffer () in
  let m = Smbm_lowerbounds.Lb_lqd.measure ~k ~buffer ~episodes:3 () in
  (* The construction achieves ratio > 4 overall... *)
  Alcotest.(check bool) "ratio exceeds 2" true (m.Smbm_lowerbounds.Runner.ratio > 2.0);
  ignore config

let test_prefix_sharper_than_final () =
  (* The checker reports the max prefix ratio, which can exceed the final
     ratio: build a trace where the opponent transmits early and LWD late. *)
  let config = Proc_config.make ~works:[| 1; 4 |] ~buffer:2 () in
  (* Opponent = quota policy keeping only work-1 packets; trace: one work-4
     packet then work-1 packets.  LWD takes the 4 first and is behind early
     but catches up. *)
  let opponent =
    Proc_policy.make ~name:"ones-only" ~push_out:false (fun sw ~dest ->
        if Proc_switch.is_full sw then Decision.Drop
        else if dest = 0 then Decision.Accept
        else Decision.Drop)
  in
  let trace =
    [|
      [ Arrival.make ~dest:1 (); Arrival.make ~dest:0 () ];
      [ Arrival.make ~dest:0 () ];
      [];
      [];
      [];
    |]
  in
  let outcome = certify ~config ~trace ~slots:8 ~opponent in
  Alcotest.(check bool) "max prefix ratio recorded" true
    (outcome.Competitive_check.max_prefix_ratio >= 1.0);
  Alcotest.(check int) "no violations" 0 outcome.Competitive_check.violations

let prop_certificate_random_traces_random_opponents =
  QCheck2.Test.make
    ~name:"2x prefix certificate holds for random quota opponents" ~count:150
    QCheck2.Gen.(
      let* k = int_range 1 4 in
      let* buffer = int_range k 6 in
      let* quotas = array_size (pure k) (int_range 0 6) in
      let* dests =
        list_size (int_range 1 12) (list_size (int_range 0 3) (int_range 0 (k - 1)))
      in
      pure (k, buffer, quotas, dests))
    (fun (k, buffer, quotas, dests) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let trace =
        Array.of_list (List.map (List.map (fun d -> Arrival.make ~dest:d ())) dests)
      in
      let opponent =
        Proc_policy.make ~name:"quota" ~push_out:false (fun sw ~dest ->
            if Proc_switch.is_full sw then Decision.Drop
            else if Proc_switch.queue_length sw dest < quotas.(dest) then
              Decision.Accept
            else Decision.Drop)
      in
      let outcome =
        certify ~config ~trace
          ~slots:(Array.length trace + (buffer * k) + k)
          ~opponent
      in
      outcome.Competitive_check.violations = 0)

let prop_certificate_vs_exact_prefixes =
  (* The strongest form: the TRUE optimum of every prefix stays within 2x of
     LWD's transmissions at that prefix, on exhaustively solvable traces. *)
  QCheck2.Test.make ~name:"exact prefix optimum <= 2 x LWD at every prefix"
    ~count:40
    QCheck2.Gen.(
      let* k = int_range 1 3 in
      let* buffer = int_range 1 3 in
      let* dests =
        list_size (int_range 1 4) (list_size (int_range 0 2) (int_range 0 (k - 1)))
      in
      pure (k, buffer, dests))
    (fun (k, buffer, dests) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let trace =
        Array.of_list (List.map (List.map (fun d -> Arrival.make ~dest:d ())) dests)
      in
      let drain = (buffer * k) + k in
      (* LWD transmissions after the full (drained) run of each prefix. *)
      let lwd_prefix t =
        let sub = Array.sub trace 0 t in
        let inst = Proc_engine.instance config (P_lwd.make config) in
        Experiment.run
          ~params:
            {
              Experiment.slots = t + drain;
              flush_every = None;
              check_every = None;
            }
          ~workload:
            (Workload.of_fun (fun i -> if i < t then sub.(i) else []))
          [ inst ];
        (Metrics.transmitted inst.Instance.metrics)
      in
      let ok = ref true in
      for t = 1 to Array.length trace do
        let exact = Exact_opt.proc config (Array.sub trace 0 t) ~drain in
        if exact > 2 * lwd_prefix t then ok := false
      done;
      !ok)

let test_value_objective_envelope () =
  (* The checker generalizes to the value objective: track the prefix
     envelope of the OPT reference over MRD on bursty traffic (no theorem
     here - the conjecture - so factor infinity, measurement only). *)
  let config = Value_config.make ~ports:8 ~max_value:8 ~buffer:32 () in
  let workload =
    Scenario.value_port_workload
      ~mmpp:{ Scenario.default_mmpp with sources = 40 }
      ~config ~load:2.0 ~seed:5 ()
  in
  let policy = Value_engine.instance config (V_mrd.make config) in
  let opponent = Opt_ref.value_instance config in
  let o =
    Competitive_check.run ~factor:infinity ~objective:`Value ~workload
      ~slots:4_000 ~flush_every:500 ~policy ~opponent ()
  in
  Alcotest.(check int) "no violations at infinite factor" 0
    o.Competitive_check.violations;
  Alcotest.(check bool) "envelope recorded and plausible" true
    (o.Competitive_check.max_prefix_ratio >= 1.0
    && o.Competitive_check.max_prefix_ratio < 10.0)

let suite =
  [
    Alcotest.test_case "all policies under the 2x envelope (MMPP)" `Slow
      test_certificate_against_all_policies_mmpp;
    Alcotest.test_case "Thm 6 trace within envelope" `Quick
      test_certificate_on_lwd_lower_bound_trace;
    Alcotest.test_case "LQD exceeds 2 on Thm 4 trace (negative control)"
      `Quick test_lqd_fails_certification_on_thm4_trace;
    Alcotest.test_case "prefix ratio recorded" `Quick
      test_prefix_sharper_than_final;
    Alcotest.test_case "value-objective envelope" `Quick
      test_value_objective_envelope;
    Qc.to_alcotest prop_certificate_random_traces_random_opponents;
    Qc.to_alcotest prop_certificate_vs_exact_prefixes;
  ]
