(* Direct coverage of the flat struct-of-arrays switch backend and its
   building blocks: Int_ring unit tests, slab growth under [set_buffer],
   fields-vs-packet transmit-path equivalence, engine-level metric identity
   between the linked and flat backends, the flat-only API restrictions —
   and the resize safety property (satellite of the flat-backend PR):
   interleaving [set_buffer] grow/shrink with accepts, push-outs and
   transmissions never drops a buffered packet and keeps every cached
   aggregate in sync, on both switches and both backends. *)

open Smbm_prelude
open Smbm_core

(* --- Int_ring --- *)

let test_int_ring_basics () =
  let r = Int_ring.create ~capacity:2 () in
  Alcotest.(check bool) "empty" true (Int_ring.is_empty r);
  for i = 0 to 9 do
    Int_ring.push_back r i
  done;
  Alcotest.(check int) "length" 10 (Int_ring.length r);
  Alcotest.(check int) "front" 0 (Int_ring.peek_front r);
  Alcotest.(check int) "get mid" 7 (Int_ring.get r 7);
  let seen = ref [] in
  Int_ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int)) "iter order" (List.init 10 Fun.id)
    (List.rev !seen);
  Alcotest.(check int) "pop_front" 0 (Int_ring.pop_front r);
  Alcotest.(check int) "pop_back" 9 (Int_ring.pop_back r);
  Alcotest.(check int) "length after pops" 8 (Int_ring.length r);
  Int_ring.clear r;
  Alcotest.(check bool) "cleared" true (Int_ring.is_empty r)

let test_int_ring_wrap_and_grow () =
  (* Force the head away from zero, then grow across the wrap point: the
     re-linearization must preserve FIFO order. *)
  let r = Int_ring.create ~capacity:4 () in
  for i = 0 to 3 do
    Int_ring.push_back r i
  done;
  Alcotest.(check int) "a" 0 (Int_ring.pop_front r);
  Alcotest.(check int) "b" 1 (Int_ring.pop_front r);
  (* Head is now at index 2; pushing five more wraps and forces growth. *)
  for i = 4 to 8 do
    Int_ring.push_back r i
  done;
  let out = ref [] in
  while not (Int_ring.is_empty r) do
    out := Int_ring.pop_front r :: !out
  done;
  Alcotest.(check (list int)) "fifo across grow" [ 2; 3; 4; 5; 6; 7; 8 ]
    (List.rev !out)

let prop_int_ring_oracle =
  (* Differential against a plain list queue. *)
  QCheck2.Test.make ~name:"Int_ring = list-queue oracle" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 200)
        (frequency
           [
             (4, map (fun x -> `Push x) (int_range 0 1000));
             (2, pure `Pop_front);
             (1, pure `Pop_back);
             (1, pure `Clear);
           ]))
    (fun ops ->
      let r = Int_ring.create ~capacity:1 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | `Push x ->
            Int_ring.push_back r x;
            model := !model @ [ x ];
            true
          | `Pop_front -> (
            match !model with
            | [] -> Int_ring.is_empty r
            | x :: rest ->
              model := rest;
              Int_ring.pop_front r = x)
          | `Pop_back -> (
            match List.rev !model with
            | [] -> Int_ring.is_empty r
            | x :: rest ->
              model := List.rev rest;
              Int_ring.pop_back r = x)
          | `Clear ->
            Int_ring.clear r;
            model := [];
            Int_ring.is_empty r)
        ops
      && Int_ring.length r = List.length !model)

(* --- slab growth --- *)

let test_proc_flat_slab_growth () =
  let config = Proc_config.make ~works:[| 2; 3 |] ~buffer:2 () in
  let sw = Proc_switch.create ~backend:`Flat config in
  Proc_switch.accept_unit sw ~dest:0;
  Proc_switch.accept_unit sw ~dest:1;
  Alcotest.(check bool) "full at 2" true (Proc_switch.is_full sw);
  (* Growing the buffer extends the slab; existing slots stay put. *)
  Proc_switch.set_buffer sw 64;
  Proc_switch.check_invariants sw;
  Alcotest.(check int) "occupancy kept" 2 (Proc_switch.occupancy sw);
  Alcotest.(check int) "work kept" 5 (Proc_switch.total_occupied_work sw);
  for _ = 1 to 31 do
    Proc_switch.accept_unit sw ~dest:0;
    Proc_switch.accept_unit sw ~dest:1
  done;
  Proc_switch.check_invariants sw;
  Alcotest.(check int) "filled to 64" 64 (Proc_switch.occupancy sw);
  (* Shrinking below occupancy is refused — never drops a packet. *)
  Alcotest.check_raises "shrink below occupancy"
    (Invalid_argument
       "Proc_switch.set_buffer: new buffer smaller than current occupancy")
    (fun () -> Proc_switch.set_buffer sw 63);
  Alcotest.(check int) "occupancy after refusal" 64 (Proc_switch.occupancy sw);
  Alcotest.(check int) "flush" 64 (Proc_switch.flush sw);
  (* After a flush the buffer may shrink to any positive size. *)
  Proc_switch.set_buffer sw 1;
  Proc_switch.check_invariants sw

let test_value_flat_slab_growth () =
  let config = Value_config.make ~ports:2 ~max_value:130 ~buffer:2 () in
  let sw = Value_switch.create ~backend:`Flat config in
  Value_switch.accept_unit sw ~dest:0 ~value:130;
  Value_switch.accept_unit sw ~dest:1 ~value:1;
  Value_switch.set_buffer sw 40;
  Value_switch.check_invariants sw;
  Alcotest.(check (option int)) "min kept" (Some 1) (Value_switch.min_value sw);
  for i = 1 to 38 do
    Value_switch.accept_unit sw ~dest:(i mod 2) ~value:((i * 7 mod 130) + 1)
  done;
  Value_switch.check_invariants sw;
  Alcotest.(check int) "filled to 40" 40 (Value_switch.occupancy sw);
  Alcotest.check_raises "shrink below occupancy"
    (Invalid_argument
       "Value_switch.set_buffer: new buffer smaller than current occupancy")
    (fun () -> Value_switch.set_buffer sw 39);
  Alcotest.(check int) "flush" 40 (Value_switch.flush sw)

(* --- flat-only API restrictions --- *)

let test_flat_api_restrictions () =
  let psw =
    Proc_switch.create ~backend:`Flat (Proc_config.make ~works:[| 1 |] ~buffer:2 ())
  in
  Alcotest.(check bool) "proc backend" true (Proc_switch.backend psw = `Flat);
  (try
     ignore (Proc_switch.queue psw 0);
     Alcotest.fail "Proc_switch.queue accepted a flat switch"
   with Invalid_argument _ -> ());
  let vsw =
    Value_switch.create ~backend:`Flat
      (Value_config.make ~ports:1 ~max_value:4 ~buffer:2 ())
  in
  Alcotest.(check bool) "value backend" true (Value_switch.backend vsw = `Flat);
  (try
     ignore (Value_switch.queue vsw 0);
     Alcotest.fail "Value_switch.queue accepted a flat switch"
   with Invalid_argument _ -> ());
  (* Value range is validated up front on the flat backend. *)
  (try
     Value_switch.accept_unit vsw ~dest:0 ~value:5;
     Alcotest.fail "out-of-range value accepted"
   with Invalid_argument _ -> ());
  Value_switch.check_invariants vsw

(* --- fields-vs-packet transmit equivalence --- *)

let test_proc_fields_transmit_equivalence () =
  List.iter
    (fun backend ->
      let config =
        Proc_config.make ~works:[| 2; 3; 1 |] ~buffer:6 ~speedup:2 ()
      in
      let a = Proc_switch.create ~backend config in
      let b = Proc_switch.create ~backend config in
      let drive sw i =
        Proc_switch.accept_unit sw ~dest:(i mod 3);
        if i mod 2 = 1 then Proc_switch.accept_unit sw ~dest:((i + 1) mod 3)
      in
      for round = 0 to 19 do
        drive a round;
        drive b round;
        let pkts = ref [] and flds = ref [] in
        let sent_a =
          Proc_switch.transmit_phase a
            ~on_transmit:(fun (p : Packet.Proc.t) ->
              pkts := (p.dest, p.arrival) :: !pkts)
        in
        let sent_b =
          Proc_switch.transmit_phase_fields b
            ~on_transmit:(fun ~dest ~arrival ->
              flds := (dest, arrival) :: !flds)
        in
        Alcotest.(check int) "sent count" sent_a sent_b;
        Alcotest.(check (list (pair int int)))
          "fields = packet path" (List.rev !pkts) (List.rev !flds);
        Proc_switch.advance_slot a;
        Proc_switch.advance_slot b
      done)
    [ `Linked; `Flat ]

let test_value_fields_transmit_equivalence () =
  List.iter
    (fun backend ->
      let config =
        Value_config.make ~ports:3 ~max_value:9 ~buffer:6 ~speedup:2 ()
      in
      let a = Value_switch.create ~backend config in
      let b = Value_switch.create ~backend config in
      let drive sw i =
        Value_switch.accept_unit sw ~dest:(i mod 3) ~value:((i * 5 mod 9) + 1)
      in
      for round = 0 to 29 do
        drive a round;
        drive b round;
        let pkts = ref [] and flds = ref [] in
        let sent_a =
          Value_switch.transmit_phase a
            ~on_transmit:(fun (p : Packet.Value.t) ->
              pkts := (p.dest, p.value, p.arrival) :: !pkts)
        in
        let sent_b =
          Value_switch.transmit_phase_fields b
            ~on_transmit:(fun ~dest ~value ~arrival ->
              flds := (dest, value, arrival) :: !flds)
        in
        Alcotest.(check int) "sent count" sent_a sent_b;
        Alcotest.(check (list (triple int int int)))
          "fields = packet path" (List.rev !pkts) (List.rev !flds);
        Value_switch.advance_slot a;
        Value_switch.advance_slot b
      done)
    [ `Linked; `Flat ]

(* --- engine-level metric identity, linked vs flat --- *)

let check_metrics_equal name a b =
  let open Smbm_sim in
  List.iter
    (fun (what, f) ->
      Alcotest.(check int) (name ^ " " ^ what) (f a) (f b))
    [
      ("arrivals", Metrics.arrivals);
      ("accepted", Metrics.accepted);
      ("dropped", Metrics.dropped);
      ("pushed_out", Metrics.pushed_out);
      ("transmitted", Metrics.transmitted);
      ("transmitted_value", Metrics.transmitted_value);
      ("flushed", Metrics.flushed);
      ("in_buffer", Metrics.in_buffer);
    ];
  Alcotest.(check (float 0.0))
    (name ^ " latency mean")
    (Running_stats.mean (Metrics.latency_stats a))
    (Running_stats.mean (Metrics.latency_stats b))

let drive_instance (inst : Smbm_sim.Instance.t) ~slots ~per_slot ~dv =
  for slot = 0 to slots - 1 do
    for j = 0 to per_slot - 1 do
      let dest, value = dv slot j in
      inst.arrive_dv ~dest ~value
    done;
    inst.transmit ();
    inst.end_slot ()
  done;
  inst.flush ();
  inst.check ()

let test_proc_engine_metric_identity () =
  let config = Proc_config.make ~works:[| 2; 3; 1; 4 |] ~buffer:8 () in
  let run impl =
    let inst =
      Smbm_sim.Proc_engine.instance config (P_lwd.make ~impl config)
    in
    drive_instance inst ~slots:200 ~per_slot:3 ~dv:(fun slot j ->
        ((((slot * 7) mod 11) + j) mod 4, 1));
    inst.metrics
  in
  check_metrics_equal "P_lwd" (run `Indexed) (run `Flat)

let test_value_engine_metric_identity () =
  let config = Value_config.make ~ports:4 ~max_value:16 ~buffer:8 () in
  let run impl =
    let inst =
      Smbm_sim.Value_engine.instance config (V_mrd.make ~impl config)
    in
    drive_instance inst ~slots:200 ~per_slot:3 ~dv:(fun slot j ->
        (((slot * 7) + j) mod 4, (((slot * 13) + (j * 5)) mod 16) + 1));
    inst.metrics
  in
  check_metrics_equal "V_mrd" (run `Indexed) (run `Flat)

(* --- resize never drops a packet, aggregates stay in sync --- *)

(* The switch-agnostic loop: apply fuzzed accept / push-out / transmit /
   resize ops while maintaining a reference count of what must still be
   buffered, and cross-check every cached aggregate after each step.  The
   resize op picks its target relative to the live occupancy so both the
   grow and the legal-shrink paths are exercised; the contract that an
   illegal shrink is refused is checked every time one would apply. *)
let run_resize_ops ~occupancy ~buffer ~set_buffer ~accept ~push_out ~transmit
    ~flush ~check ~shrink_refused ops =
  let expected = ref 0 in
  List.for_all
    (fun op ->
      (match op with
      | `Accept d ->
        if occupancy () < buffer () then begin
          accept d;
          incr expected
        end
      | `Push_out ->
        if occupancy () > 0 then begin
          push_out ();
          decr expected
        end
      | `Transmit -> expected := !expected - transmit ()
      | `Resize b ->
        let occ = occupancy () in
        if b < occ then begin
          (* The illegal shrink must be refused with the buffer intact... *)
          if not (shrink_refused b) then raise Exit;
          (* ...then the clamped resize must apply. *)
          set_buffer (max 1 occ)
        end
        else set_buffer (max 1 b)
      | `Flush ->
        let n = flush () in
        if n <> !expected then raise Exit;
        expected := 0);
      check ();
      occupancy () = !expected && occupancy () <= buffer ())
    ops

let resize_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 30 120)
      (frequency
         [
           (5, map (fun d -> `Accept d) (int_range 0 2));
           (2, pure `Push_out);
           (2, pure `Transmit);
           (2, map (fun b -> `Resize b) (int_range 1 16));
           (1, pure `Flush);
         ]))

let prop_proc_resize_never_drops =
  QCheck2.Test.make
    ~name:"proc set_buffer never drops a packet (linked and flat)" ~count:200
    resize_ops_gen
    (fun ops ->
      List.for_all
        (fun backend ->
          let config = Proc_config.make ~works:[| 2; 1; 3 |] ~buffer:4 () in
          let sw = Proc_switch.create ~backend config in
          let sum_ports f =
            let acc = ref 0 in
            for j = 0 to Proc_switch.n sw - 1 do
              acc := !acc + f sw j
            done;
            !acc
          in
          run_resize_ops ops
            ~occupancy:(fun () -> Proc_switch.occupancy sw)
            ~buffer:(fun () -> Proc_switch.buffer sw)
            ~set_buffer:(Proc_switch.set_buffer sw)
            ~accept:(fun d -> Proc_switch.accept_unit sw ~dest:d)
            ~push_out:(fun () ->
              (* Evict from the longest queue, like a policy would. *)
              let victim = ref 0 in
              for j = 1 to Proc_switch.n sw - 1 do
                if
                  Proc_switch.queue_length sw j
                  > Proc_switch.queue_length sw !victim
                then victim := j
              done;
              Proc_switch.push_out_unit sw ~victim:!victim)
            ~transmit:(fun () ->
              let sent =
                Proc_switch.transmit_phase sw ~on_transmit:ignore
              in
              Proc_switch.advance_slot sw;
              sent)
            ~flush:(fun () -> Proc_switch.flush sw)
            ~shrink_refused:(fun b ->
              match Proc_switch.set_buffer sw b with
              | () -> false
              | exception Invalid_argument _ -> true)
            ~check:(fun () ->
              Proc_switch.check_invariants sw;
              (* Aggregates stay in sync with the queues across resizes. *)
              if sum_ports Proc_switch.queue_length <> Proc_switch.occupancy sw
              then raise Exit;
              if
                sum_ports Proc_switch.queue_work
                <> Proc_switch.total_occupied_work sw
              then raise Exit))
        [ `Linked; `Flat ])

let prop_value_resize_never_drops =
  QCheck2.Test.make
    ~name:"value set_buffer never drops a packet (linked and flat)" ~count:200
    resize_ops_gen
    (fun ops ->
      List.for_all
        (fun backend ->
          let config = Value_config.make ~ports:3 ~max_value:7 ~buffer:4 () in
          let sw = Value_switch.create ~backend config in
          let sum_ports f =
            let acc = ref 0 in
            for j = 0 to Value_switch.n sw - 1 do
              acc := !acc + f sw j
            done;
            !acc
          in
          let step = ref 0 in
          run_resize_ops ops
            ~occupancy:(fun () -> Value_switch.occupancy sw)
            ~buffer:(fun () -> Value_switch.buffer sw)
            ~set_buffer:(Value_switch.set_buffer sw)
            ~accept:(fun d ->
              incr step;
              Value_switch.accept_unit sw ~dest:d
                ~value:((!step * 5 mod 7) + 1))
            ~push_out:(fun () ->
              match Value_switch.min_value_port sw with
              | None -> ()
              | Some victim ->
                ignore (Value_switch.push_out_lost sw ~victim : int))
            ~transmit:(fun () ->
              let sent =
                Value_switch.transmit_phase sw ~on_transmit:ignore
              in
              Value_switch.advance_slot sw;
              sent)
            ~flush:(fun () -> Value_switch.flush sw)
            ~shrink_refused:(fun b ->
              match Value_switch.set_buffer sw b with
              | () -> false
              | exception Invalid_argument _ -> true)
            ~check:(fun () ->
              Value_switch.check_invariants sw;
              if
                sum_ports Value_switch.queue_length
                <> Value_switch.occupancy sw
              then raise Exit;
              match Value_switch.min_value sw with
              | None -> if Value_switch.occupancy sw <> 0 then raise Exit
              | Some m -> (
                match Value_switch.min_value_port sw with
                | None -> raise Exit
                | Some j ->
                  if Value_switch.queue_min_value sw j <> Some m then
                    raise Exit)))
        [ `Linked; `Flat ])

let suite =
  [
    Alcotest.test_case "Int_ring basics" `Quick test_int_ring_basics;
    Alcotest.test_case "Int_ring wrap and grow" `Quick
      test_int_ring_wrap_and_grow;
    Qc.to_alcotest prop_int_ring_oracle;
    Alcotest.test_case "proc flat slab growth" `Quick
      test_proc_flat_slab_growth;
    Alcotest.test_case "value flat slab growth" `Quick
      test_value_flat_slab_growth;
    Alcotest.test_case "flat API restrictions" `Quick
      test_flat_api_restrictions;
    Alcotest.test_case "proc fields transmit = packet transmit" `Quick
      test_proc_fields_transmit_equivalence;
    Alcotest.test_case "value fields transmit = packet transmit" `Quick
      test_value_fields_transmit_equivalence;
    Alcotest.test_case "proc engine metrics: linked = flat" `Quick
      test_proc_engine_metric_identity;
    Alcotest.test_case "value engine metrics: linked = flat" `Quick
      test_value_engine_metric_identity;
    Qc.to_alcotest prop_proc_resize_never_drops;
    Qc.to_alcotest prop_value_resize_never_drops;
  ]
