(* End-to-end checks that the simulation study reproduces the *shape* of the
   paper's Fig. 5 at miniature scale (fixed seeds, reduced slot counts). *)

open Smbm_sim

let base =
  {
    Sweep.default_base with
    Sweep.slots = 15_000;
    flush_every = Some 1_500;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 100 };
    seed = 1234;
  }

let assoc name ratios =
  match List.assoc_opt name ratios with
  | Some r -> r
  | None -> Alcotest.failf "policy %s missing from ratios" name

let test_proc_ordering_under_congestion () =
  (* Paper Fig. 5(1) at one congested point: LWD best, BPD clearly worst,
     BPD1 between BPD and the push-out policies. *)
  let ratios = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.K ~x:32 () in
  let lwd = assoc "LWD" ratios
  and lqd = assoc "LQD" ratios
  and bpd = assoc "BPD" ratios
  and bpd1 = assoc "BPD1" ratios in
  Alcotest.(check bool) "LWD no worse than LQD" true (lwd <= lqd +. 0.02);
  Alcotest.(check bool) "BPD poorest of the push-out family" true
    (bpd > lwd && bpd > lqd && bpd > bpd1);
  List.iter
    (fun (name, r) ->
      if r < lwd -. 0.02 then
        Alcotest.failf "%s (%.3f) beats LWD (%.3f)" name r lwd)
    ratios

let test_proc_nonpushout_degrade_with_k () =
  (* Non-push-out policies deteriorate faster as k grows. *)
  let at x = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.K ~x () in
  let small = at 4 and large = at 32 in
  let growth name = assoc name large -. assoc name small in
  Alcotest.(check bool) "NHDT degrades more than LWD" true
    (growth "NHDT" > growth "LWD");
  Alcotest.(check bool) "NEST degrades more than LWD" true
    (growth "NEST" > growth "LWD")

let test_proc_large_buffer_relieves_congestion () =
  (* Fig. 5(2): with a very large buffer drops disappear and all policies
     converge onto a common floor (the floor stays above 1 because the OPT
     reference relaxes per-port FIFO service, as the paper notes). *)
  let tight = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.B ~x:32 () in
  let loose = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.B ~x:4096 () in
  Alcotest.(check bool) "NEST improves with buffer" true
    (assoc "NEST" loose < assoc "NEST" tight);
  let values = List.map snd loose in
  let lo = List.fold_left Float.min infinity values
  and hi = List.fold_left Float.max neg_infinity values in
  Alcotest.(check bool) "all policies converge at huge buffer" true
    (hi -. lo < 0.05)

let test_proc_speedup_relieves_congestion () =
  (* Fig. 5(3): speedup benefits every policy; LWD stays ahead. *)
  let slow = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.C ~x:1 () in
  let fast = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.C ~x:8 () in
  Alcotest.(check bool) "LWD improves with speedup" true
    (assoc "LWD" fast < assoc "LWD" slow);
  Alcotest.(check bool) "LWD still leads" true
    (List.for_all (fun (_, r) -> r >= assoc "LWD" fast -. 0.05) fast)

let test_value_uniform_ordering () =
  (* Fig. 5(4-6): MRD and LQD close together in front; MVD/MVD1 trail far
     behind; the greedy non-push-out baseline is poor. *)
  let ratios =
    Sweep.run_point ~base ~model:Sweep.Value_uniform ~axis:Sweep.K ~x:16 ()
  in
  let mrd = assoc "MRD" ratios
  and lqd = assoc "LQD" ratios
  and mvd = assoc "MVD" ratios
  and mvd1 = assoc "MVD1" ratios in
  Alcotest.(check bool) "MRD at least as good as LQD (small gap)" true
    (mrd <= lqd +. 0.05);
  (* "Trailing behind" compares distance from the OPT reference: MVD's
     excess over 1 clearly exceeds MRD's. *)
  Alcotest.(check bool) "MVD trails behind MRD" true
    (mvd -. 1.0 > 1.3 *. (mrd -. 1.0));
  Alcotest.(check bool) "MVD1 better than MVD" true (mvd1 < mvd)

let test_value_port_mrd_advantage () =
  (* Fig. 5(7-9): with value tied to port MRD tracks LQD closely under
     uniform overload (keeping every port active is already optimal
     there)... *)
  let ratios =
    Sweep.run_point ~base ~model:Sweep.Value_port ~axis:Sweep.K ~x:16 ()
  in
  Alcotest.(check bool) "MRD tracks LQD" true
    (assoc "MRD" ratios <= assoc "LQD" ratios +. 0.04)

let test_value_port_flood_mrd_wins () =
  (* ... and pulls ahead when cheap traffic floods the low-value ports -
     the paper's "distributions that prioritize certain values at specific
     queues". *)
  let open Smbm_core in
  let open Smbm_traffic in
  let config = Value_config.make ~ports:16 ~max_value:16 ~buffer:64 () in
  let run policy =
    let workload =
      Scenario.value_port_flood_workload
        ~mmpp:{ Scenario.default_mmpp with sources = 100 }
        ~config ~load:1.5 ~seed:7 ()
    in
    let alg = Value_engine.instance config policy in
    let opt = Opt_ref.value_instance config in
    Experiment.run
      ~params:
        { Experiment.slots = 20_000; flush_every = Some 5_000; check_every = None }
      ~workload [ alg; opt ];
    Experiment.ratio ~objective:`Value ~opt ~alg
  in
  let mrd = run (V_mrd.make config) and lqd = run (V_lqd.make config) in
  Alcotest.(check bool) "MRD strictly better under cheap flood" true (mrd < lqd)

let test_value_large_speedup_mvd_wins () =
  (* The paper's graph (6) peculiarity: at very large speedup MVD overtakes
     LQD and MRD (bursts processable in one slot but not bufferable). *)
  let ratios =
    Sweep.run_point
      ~base:{ base with Sweep.load = 4.0 }
      ~model:Sweep.Value_uniform ~axis:Sweep.C ~x:16 ()
  in
  let mvd = assoc "MVD" ratios
  and lqd = assoc "LQD" ratios in
  Alcotest.(check bool) "MVD competitive at high speedup" true
    (mvd < lqd +. 0.25)

let test_all_ratios_at_least_one () =
  List.iter
    (fun (model, name) ->
      let ratios = Sweep.run_point ~base ~model ~axis:Sweep.K ~x:8 () in
      List.iter
        (fun (policy, r) ->
          if r < 0.999 then
            Alcotest.failf "%s/%s beat the OPT reference: %.4f" name policy r)
        ratios)
    [
      (Sweep.Proc, "proc");
      (Sweep.Value_uniform, "value-uniform");
      (Sweep.Value_port, "value-port");
    ]

let test_mrd_never_explicitly_worse_than_lqd () =
  (* The paper: "in general, our experiments suggest that MRD is never
     explicitly worse than LQD".  Aggregated over many random small traces,
     MRD's transmitted value must stay within a whisker of LQD's. *)
  let open Smbm_core in
  let open Smbm_traffic in
  let rng = Smbm_prelude.Rng.create ~seed:77 in
  let module R = Smbm_prelude.Rng in
  let total_mrd = ref 0 and total_lqd = ref 0 in
  for _ = 1 to 150 do
    let ports = R.int_in rng 1 4 in
    let k = R.int_in rng 2 8 in
    let buffer = R.int_in rng 2 8 in
    let config = Value_config.make ~ports ~max_value:k ~buffer () in
    let slots = R.int_in rng 2 10 in
    let trace =
      Array.init slots (fun _ ->
          List.init (R.int_in rng 0 5) (fun _ ->
              Arrival.make ~dest:(R.int rng ports) ~value:(R.int_in rng 1 k) ()))
    in
    let run policy =
      let inst = Value_engine.instance config policy in
      Experiment.run
        ~params:
          {
            Experiment.slots = slots + buffer + 1;
            flush_every = None;
            check_every = None;
          }
        ~workload:
          (Workload.of_fun (fun i -> if i < slots then trace.(i) else []))
        [ inst ];
      (Metrics.transmitted_value inst.Instance.metrics)
    in
    total_mrd := !total_mrd + run (V_mrd.make config);
    total_lqd := !total_lqd + run (V_lqd.make config)
  done;
  Alcotest.(check bool) "MRD aggregate within 2% of LQD" true
    (float_of_int !total_mrd >= 0.98 *. float_of_int !total_lqd)

let test_determinism_across_runs () =
  let run () = Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.K ~x:8 () in
  let a = run () and b = run () in
  List.iter2
    (fun (n1, r1) (n2, r2) ->
      Alcotest.(check string) "same policy" n1 n2;
      Alcotest.(check (float 1e-12)) "identical ratio" r1 r2)
    a b

let suite =
  [
    Alcotest.test_case "proc ordering under congestion" `Slow
      test_proc_ordering_under_congestion;
    Alcotest.test_case "non-push-out degrade with k" `Slow
      test_proc_nonpushout_degrade_with_k;
    Alcotest.test_case "large buffer relieves congestion" `Slow
      test_proc_large_buffer_relieves_congestion;
    Alcotest.test_case "speedup relieves congestion" `Slow
      test_proc_speedup_relieves_congestion;
    Alcotest.test_case "value-uniform ordering" `Slow
      test_value_uniform_ordering;
    Alcotest.test_case "value-port MRD advantage" `Slow
      test_value_port_mrd_advantage;
    Alcotest.test_case "cheap flood favours MRD" `Slow
      test_value_port_flood_mrd_wins;
    Alcotest.test_case "high speedup favours MVD" `Slow
      test_value_large_speedup_mvd_wins;
    Alcotest.test_case "no policy beats the OPT reference" `Slow
      test_all_ratios_at_least_one;
    Alcotest.test_case "MRD never explicitly worse than LQD" `Quick
      test_mrd_never_explicitly_worse_than_lqd;
    Alcotest.test_case "determinism across runs" `Slow
      test_determinism_across_runs;
  ]
