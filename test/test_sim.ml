open Smbm_core
open Smbm_traffic
open Smbm_sim

(* --- Metrics --- *)

let test_metrics_conservation () =
  let m = Metrics.create () in
  for _ = 1 to 7 do
    Metrics.record_arrival m;
    Metrics.record_accept m
  done;
  for _ = 1 to 3 do
    Metrics.record_arrival m;
    Metrics.record_drop m
  done;
  Metrics.record_transmissions m ~count:4 ~value:4;
  Metrics.record_push_out m;
  Metrics.record_flush m 1;
  Metrics.check_conservation m;
  Alcotest.(check int) "in buffer" 1 (Metrics.in_buffer m);
  (* An extra drop without its arrival breaks arrivals = accepted + dropped. *)
  Metrics.record_drop m;
  match Metrics.check_conservation m with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "inconsistent metrics accepted"

let test_metrics_throughput_objectives () =
  let m = Metrics.create () in
  Metrics.record_transmissions m ~count:5 ~value:17;
  Alcotest.(check int) "packets" 5 (Metrics.throughput_of `Packets m);
  Alcotest.(check int) "value" 17 (Metrics.throughput_of `Value m)

(* --- Proc engine --- *)

let contiguous k buffer = Proc_config.contiguous ~k ~buffer ()

let test_proc_engine_greedy_run () =
  (* Two work-1 arrivals per slot at a 2-port switch with ample buffer:
     everything is transmitted with no drops. *)
  let config = Proc_config.uniform ~n:2 ~work:1 ~buffer:8 () in
  let inst = Proc_engine.instance config (P_lwd.make config) in
  let w =
    Workload.of_fun (fun _ -> [ Arrival.make ~dest:0 (); Arrival.make ~dest:1 () ])
  in
  Experiment.run
    ~params:{ Experiment.slots = 100; flush_every = None; check_every = Some 1 }
    ~workload:w [ inst ];
  Alcotest.(check int) "arrivals" 200 (Metrics.arrivals inst.metrics);
  Alcotest.(check int) "transmitted" 200 (Metrics.transmitted inst.metrics);
  Alcotest.(check int) "dropped" 0 (Metrics.dropped inst.metrics)

let test_proc_engine_drop_counted () =
  let config = contiguous 2 2 in
  let inst = Proc_engine.instance config (P_nest.make config) in
  (* NEST threshold B/n = 1; a 3-burst to port 0 gets 1 accepted, 2 dropped. *)
  let w = Workload.of_slots [| List.init 3 (fun _ -> Arrival.make ~dest:0 ()) |] in
  Experiment.run
    ~params:{ Experiment.slots = 1; flush_every = None; check_every = Some 1 }
    ~workload:w [ inst ];
  Alcotest.(check int) "accepted" 1 (Metrics.accepted inst.metrics);
  Alcotest.(check int) "dropped" 2 (Metrics.dropped inst.metrics)

let test_proc_engine_push_out_counted () =
  let config = contiguous 2 2 in
  let inst, sw = Proc_engine.create config (P_lwd.make config) in
  (* Fill with two work-1 packets, then a work-2 arrival pushes one out?
     LWD: W0 = 2 (virtual includes dest), W1 virtual = 2 - tie, larger work
     wins: victim is Q1 = dest, so drop.  Use a work-1 arrival onto heavier
     queue instead: fill Q1 (work 2) with 2 packets (W=4), arrival for port
     0: W0 virtual = 1 < 4: push out from Q1. *)
  let w =
    Workload.of_slots
      [|
        [ Arrival.make ~dest:1 (); Arrival.make ~dest:1 (); Arrival.make ~dest:0 () ];
      |]
  in
  Experiment.run
    ~params:{ Experiment.slots = 1; flush_every = None; check_every = Some 1 }
    ~workload:w [ inst ];
  Alcotest.(check int) "accepted" 3 (Metrics.accepted inst.metrics);
  Alcotest.(check int) "pushed out" 1 (Metrics.pushed_out inst.metrics);
  (* Transmission already ran: port 0's work-1 packet went out; the evicted
     queue kept a single packet. *)
  Alcotest.(check int) "port 0 transmitted" 1 (Metrics.transmitted inst.metrics);
  Alcotest.(check int) "victim queue shrank" 1 (Proc_switch.queue_length sw 1)

let test_proc_engine_rejects_illegal_push_out () =
  let config = contiguous 2 4 in
  let rogue =
    Proc_policy.make ~name:"rogue" ~push_out:true (fun _sw ~dest:_ ->
        Decision.Push_out { victim = 0 })
  in
  let inst = Proc_engine.instance config rogue in
  match inst.arrive (Arrival.make ~dest:0 ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "push-out with free space must be rejected"

let test_proc_engine_latency () =
  let config = contiguous 1 4 in
  let inst = Proc_engine.instance config (P_lwd.make config) in
  (* One work-1 packet arriving at slot 0 transmits at slot 0: latency 0. *)
  let w = Workload.of_slots [| [ Arrival.make ~dest:0 () ] |] in
  Experiment.run
    ~params:{ Experiment.slots = 3; flush_every = None; check_every = None }
    ~workload:w [ inst ];
  Alcotest.(check int) "latency samples" 1
    (Smbm_prelude.Running_stats.count (Metrics.latency_stats inst.metrics));
  Alcotest.(check (float 1e-9)) "same-slot latency" 0.0
    (Smbm_prelude.Running_stats.mean (Metrics.latency_stats inst.metrics))

let test_flushout () =
  let config = contiguous 1 4 in
  (* Work-1 port, one arrival per slot, flush every 2 slots: the arrival of a
     slot is transmitted the same slot, so flushes discard nothing; with a
     work-2... use k=2 port only (dest 0 work 1? contiguous 1 port work 1).
     Fill 3 packets in slot 0: one transmits, two remain, flush discards at
     slot boundary. *)
  let inst = Proc_engine.instance config (P_lwd.make config) in
  let w = Workload.of_slots [| List.init 3 (fun _ -> Arrival.make ~dest:0 ()) |] in
  Experiment.run
    ~params:{ Experiment.slots = 2; flush_every = Some 1; check_every = Some 1 }
    ~workload:w [ inst ];
  Alcotest.(check int) "transmitted" 1 (Metrics.transmitted inst.metrics);
  Alcotest.(check int) "flushed" 2 (Metrics.flushed inst.metrics);
  Alcotest.(check int) "in buffer" 0 (Metrics.in_buffer inst.metrics)

(* --- Value engine --- *)

let test_value_engine_value_accounting () =
  let config = Value_config.make ~ports:2 ~max_value:9 ~buffer:4 () in
  let inst = Value_engine.instance config (V_mrd.make config) in
  let w =
    Workload.of_slots
      [| [ Arrival.make ~dest:0 ~value:9 (); Arrival.make ~dest:1 ~value:3 () ] |]
  in
  Experiment.run
    ~params:{ Experiment.slots = 1; flush_every = None; check_every = Some 1 }
    ~workload:w [ inst ];
  Alcotest.(check int) "packets" 2 (Metrics.transmitted inst.metrics);
  Alcotest.(check int) "value" 12 (Metrics.transmitted_value inst.metrics)

let test_value_engine_push_out () =
  let config = Value_config.make ~ports:1 ~max_value:9 ~buffer:1 () in
  let inst = Value_engine.instance config (V_mvd.make config) in
  let w =
    Workload.of_slots
      [| [ Arrival.make ~dest:0 ~value:1 (); Arrival.make ~dest:0 ~value:5 () ] |]
  in
  Experiment.run
    ~params:{ Experiment.slots = 1; flush_every = None; check_every = Some 1 }
    ~workload:w [ inst ];
  Alcotest.(check int) "pushed out" 1 (Metrics.pushed_out inst.metrics);
  Alcotest.(check int) "value kept" 5 (Metrics.transmitted_value inst.metrics)

(* --- OPT reference --- *)

let test_opt_proc_smallest_first () =
  let config = contiguous 2 4 in
  (* cores = n * C = 2; buffer holds works {1, 2}; slot 1: both get a cycle,
     the 1 completes. *)
  let opt = Opt_ref.proc_instance config in
  opt.arrive (Arrival.make ~dest:1 ());
  opt.arrive (Arrival.make ~dest:0 ());
  opt.transmit ();
  Alcotest.(check int) "work-1 done first" 1 (Metrics.transmitted opt.metrics);
  opt.transmit ();
  Alcotest.(check int) "work-2 done next" 2 (Metrics.transmitted opt.metrics);
  opt.check ()

let test_opt_proc_admission_evicts_largest () =
  let config = contiguous 3 2 in
  let opt = Opt_ref.proc_instance config in
  opt.arrive (Arrival.make ~dest:2 ());
  opt.arrive (Arrival.make ~dest:2 ());
  (* Buffer full of work-3; a work-1 arrival evicts one. *)
  opt.arrive (Arrival.make ~dest:0 ());
  Alcotest.(check int) "pushed out" 1 (Metrics.pushed_out opt.metrics);
  Alcotest.(check int) "occupancy" 2 (opt.occupancy ());
  (* A work-3 arrival cannot displace anything better. *)
  opt.arrive (Arrival.make ~dest:2 ());
  Alcotest.(check int) "dropped" 1 (Metrics.dropped opt.metrics);
  opt.check ()

let test_opt_value_largest_first () =
  let config = Value_config.make ~ports:2 ~max_value:9 ~buffer:4 ~speedup:1 () in
  let opt = Opt_ref.value_instance ~cores:1 config in
  opt.arrive (Arrival.make ~dest:0 ~value:2 ());
  opt.arrive (Arrival.make ~dest:0 ~value:7 ());
  opt.transmit ();
  Alcotest.(check int) "value 7 first" 7 (Metrics.transmitted_value opt.metrics);
  opt.check ()

let test_opt_value_admission_evicts_min () =
  let config = Value_config.make ~ports:1 ~max_value:9 ~buffer:2 () in
  let opt = Opt_ref.value_instance config in
  opt.arrive (Arrival.make ~dest:0 ~value:1 ());
  opt.arrive (Arrival.make ~dest:0 ~value:2 ());
  opt.arrive (Arrival.make ~dest:0 ~value:9 ());
  Alcotest.(check int) "pushed out the 1" 1 (Metrics.pushed_out opt.metrics);
  opt.arrive (Arrival.make ~dest:0 ~value:2 ());
  Alcotest.(check int) "no gain, dropped" 1 (Metrics.dropped opt.metrics);
  opt.check ()

(* OPT reference dominates every real policy on identical traffic: it relaxes
   the switch (free core assignment) and keeps the cheapest work. *)
let prop_opt_dominates_policies =
  QCheck2.Test.make
    ~name:"single-PQ reference dominates every policy per trace" ~count:60
    QCheck2.Gen.(
      let* k = int_range 1 4 in
      let* buffer = int_range k 8 in
      let* slots = int_range 1 30 in
      let* arrivals =
        list_size (pure slots) (list_size (int_range 0 4) (int_range 0 (k - 1)))
      in
      pure (k, buffer, arrivals))
    (fun (k, buffer, arrivals) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let slots_arr =
        Array.of_list
          (List.map (List.map (fun dest -> Arrival.make ~dest ())) arrivals)
      in
      (* Give both sides time to drain. *)
      let total_slots = Array.length slots_arr + (buffer * k) in
      List.for_all
        (fun policy ->
          let alg = Proc_engine.instance config policy in
          let opt = Opt_ref.proc_instance config in
          Experiment.run
            ~params:
              { Experiment.slots = total_slots; flush_every = None; check_every = None }
            ~workload:(Workload.of_slots slots_arr) [ alg; opt ];
          (Metrics.transmitted opt.metrics) >= (Metrics.transmitted alg.metrics))
        (Policies.proc config))

(* --- Experiment --- *)

let test_experiment_lockstep_shares_traffic () =
  let config = contiguous 2 4 in
  let a = Proc_engine.instance ~name:"a" config (P_lwd.make config) in
  let b = Proc_engine.instance ~name:"b" config (P_lwd.make config) in
  let w =
    Workload.of_fun (fun slot -> [ Arrival.make ~dest:(slot mod 2) () ])
  in
  Experiment.run
    ~params:{ Experiment.slots = 50; flush_every = None; check_every = Some 5 }
    ~workload:w [ a; b ];
  Alcotest.(check int) "identical metrics" (Metrics.transmitted a.metrics)
    (Metrics.transmitted b.metrics);
  Alcotest.(check int) "all arrivals seen once" 50 (Metrics.arrivals a.metrics)

let test_experiment_ratio () =
  let mk name transmitted =
    let m = Metrics.create () in
    Metrics.record_transmissions m ~count:transmitted ~value:(2 * transmitted);
    {
      Instance.name;
      arrive = (fun _ -> ());
      arrive_dv = (fun ~dest:_ ~value:_ -> ());
      arrive_batch = None;
      transmit = (fun () -> ());
      end_slot = (fun () -> ());
      flush = (fun () -> ());
      occupancy = (fun () -> 0);
      metrics = m;
      ports = None;
      check = (fun () -> ());
    }
  in
  let opt = mk "opt" 10 and alg = mk "alg" 4 in
  Alcotest.(check (float 1e-9)) "packets ratio" 2.5
    (Experiment.ratio ~objective:`Packets ~opt ~alg);
  Alcotest.(check (float 1e-9)) "value ratio" 2.5
    (Experiment.ratio ~objective:`Value ~opt ~alg);
  let zero = mk "zero" 0 in
  Alcotest.(check (float 1e-9)) "zero vs zero" 1.0
    (Experiment.ratio ~objective:`Packets ~opt:zero ~alg:zero);
  Alcotest.(check bool) "infinite ratio" true
    (Experiment.ratio ~objective:`Packets ~opt ~alg:zero = infinity)

(* --- Sweep --- *)

let test_sweep_panel_definitions () =
  let p1 = Sweep.panel 1 and p5 = Sweep.panel 5 and p9 = Sweep.panel 9 in
  Alcotest.(check bool) "panel 1 is proc/K" true
    (p1.Sweep.model = Sweep.Proc && p1.Sweep.axis = Sweep.K);
  Alcotest.(check bool) "panel 5 is value-uniform/B" true
    (p5.Sweep.model = Sweep.Value_uniform && p5.Sweep.axis = Sweep.B);
  Alcotest.(check bool) "panel 9 is value-port/C" true
    (p9.Sweep.model = Sweep.Value_port && p9.Sweep.axis = Sweep.C);
  (match Sweep.panel 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "panel 0 accepted");
  match Sweep.panel 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "panel 10 accepted"

let tiny_base =
  {
    Sweep.default_base with
    Sweep.k = 4;
    buffer = 16;
    slots = 2_000;
    flush_every = Some 500;
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 50 };
  }

let test_sweep_run_point_sane () =
  let ratios = Sweep.run_point ~base:tiny_base ~model:Sweep.Proc ~axis:Sweep.K ~x:4 () in
  Alcotest.(check int) "seven policies" 7 (List.length ratios);
  List.iter
    (fun (name, r) ->
      if r < 0.999 then
        Alcotest.failf "%s beat the OPT reference: %f" name r;
      if Float.is_nan r then Alcotest.failf "%s ratio is NaN" name)
    ratios

let test_sweep_panel_runs () =
  let outcome = Sweep.run_panel ~base:tiny_base ~xs:[ 2; 4 ] 4 in
  Alcotest.(check int) "two points" 2 (List.length outcome.Sweep.points);
  List.iter
    (fun (p : Sweep.point) ->
      Alcotest.(check int) "six value policies" 6 (List.length p.ratios))
    outcome.Sweep.points

let test_sweep_objective () =
  Alcotest.(check bool) "proc counts packets" true
    (Sweep.objective Sweep.Proc = `Packets);
  Alcotest.(check bool) "value counts value" true
    (Sweep.objective Sweep.Value_port = `Value)

let suite =
  [
    Alcotest.test_case "metrics conservation" `Quick test_metrics_conservation;
    Alcotest.test_case "metrics objectives" `Quick
      test_metrics_throughput_objectives;
    Alcotest.test_case "proc engine greedy run" `Quick
      test_proc_engine_greedy_run;
    Alcotest.test_case "proc engine counts drops" `Quick
      test_proc_engine_drop_counted;
    Alcotest.test_case "proc engine counts push-outs" `Quick
      test_proc_engine_push_out_counted;
    Alcotest.test_case "proc engine rejects illegal push-out" `Quick
      test_proc_engine_rejects_illegal_push_out;
    Alcotest.test_case "proc engine latency" `Quick test_proc_engine_latency;
    Alcotest.test_case "flushout" `Quick test_flushout;
    Alcotest.test_case "value engine accounting" `Quick
      test_value_engine_value_accounting;
    Alcotest.test_case "value engine push-out" `Quick
      test_value_engine_push_out;
    Alcotest.test_case "OPT proc smallest first" `Quick
      test_opt_proc_smallest_first;
    Alcotest.test_case "OPT proc admission" `Quick
      test_opt_proc_admission_evicts_largest;
    Alcotest.test_case "OPT value largest first" `Quick
      test_opt_value_largest_first;
    Alcotest.test_case "OPT value admission" `Quick
      test_opt_value_admission_evicts_min;
    Alcotest.test_case "experiment lockstep" `Quick
      test_experiment_lockstep_shares_traffic;
    Alcotest.test_case "experiment ratio" `Quick test_experiment_ratio;
    Alcotest.test_case "sweep panel definitions" `Quick
      test_sweep_panel_definitions;
    Alcotest.test_case "sweep point sanity" `Quick test_sweep_run_point_sane;
    Alcotest.test_case "sweep panel run" `Quick test_sweep_panel_runs;
    Alcotest.test_case "sweep objective" `Quick test_sweep_objective;
    Qc.to_alcotest prop_opt_dominates_policies;
  ]
